//! The expression error `E_e(i,j) = E|λ̄_ij − λ_ij|` (Definition 5) under
//! the paper's Poisson model, and the paper's three ways of computing it.
//!
//! With `λ_ij ~ Pois(a)` (`a = α_ij`) and the rest of the MGrid
//! `λ_{i,≠j} ~ Pois(b)` (`b = Σ_{g≠j} α_ig`), Eq. 7 gives
//!
//! ```text
//! E_e(i,j) = Σ_{k_h} Σ_{k_m} |(m−1)·k_h − k_m| / m · P_a(k_h) · P_b(k_m)
//! ```
//!
//! truncated at `k_h ≤ K`, `k_m ≤ (m−1)K` (Theorem III.2 bounds the
//! truncation error). The implementations:
//!
//! * [`expression_error_naive`] — recomputes each pmf value from scratch by
//!   repeated multiplication, `O(mK³)`: the strawman of Fig. 16;
//! * [`expression_error_alg1`] — the paper's Algorithm 1, incremental pmf
//!   recurrences, `O(mK²)`;
//! * [`expression_error_alg2`] — the paper's Algorithm 2, prefix sums over
//!   the inner series, `O(mK)`;
//! * [`expression_error_windowed`] — a production variant of Algorithm 2
//!   that replaces the fixed `K` with the Poisson mass window, so cost
//!   scales with `√α` instead of `K` and MGrid means in the thousands stay
//!   both stable and fast. This is what the field-level sweeps use.
//!
//! `naive` and `alg1` follow the paper in starting their recurrences at
//! `e^{-α}`, which underflows to zero for `α ≳ 745`; they are kept faithful
//! for the algorithmic comparison and validated only in that domain.
//! `alg2` and `windowed` anchor pmf evaluation at the mode
//! (see [`crate::poisson::poisson_pmf_into`]) and have no such limit.

use crate::error::CoreError;
use crate::expr_kernel::{ExprWorkspace, PmfMemo};
use crate::poisson::poisson_pmf_into;
use gridtuner_spatial::{CellId, CountMatrix, Partition, RegionId, SpatialPartition};

/// Expression error by brute force: every `p(r_ij, k_h, k_m)` is rebuilt by
/// an `O(k_h + k_m)` multiplication loop, giving `O(mK³)` total. Subject to
/// underflow for `a + b ≳ 745`, like the paper's original.
pub fn expression_error_naive(a: f64, b: f64, m: usize, k: usize) -> f64 {
    check_args(a, b, m);
    if m == 1 {
        return 0.0;
    }
    let t1 = (m - 1) * k;
    let base = (-(a + b)).exp();
    let mut total = 0.0;
    for kh in 0..=k {
        for km in 0..=t1 {
            // p = e^{-(a+b)} a^kh/kh! · b^km/km!, built term by term.
            let mut p = base;
            for i in 1..=kh {
                p *= a / i as f64;
            }
            for j in 1..=km {
                p *= b / j as f64;
            }
            let weight = ((m - 1) as f64 * kh as f64 - km as f64).abs() / m as f64;
            total += weight * p;
        }
    }
    total
}

/// Algorithm 1 of the paper: the pmf recurrences
/// `p₁ ← p₁·a/k_h`, `p₂ ← p₂·b/(k_m+1)` make each term `O(1)`, for `O(mK²)`
/// total. (The paper's pseudocode updates `p₁` *after* the inner loop
/// starting from `k_h = 1`, which would pair weight `k_h` with probability
/// `P_a(k_h − 1)`; we keep weight and probability aligned.)
pub fn expression_error_alg1(a: f64, b: f64, m: usize, k: usize) -> f64 {
    check_args(a, b, m);
    if m == 1 {
        return 0.0;
    }
    let t1 = (m - 1) * k;
    let mut total = 0.0;
    let mut p1 = (-a).exp(); // P_a(0)
    for kh in 0..=k {
        let mut p2 = (-b).exp(); // P_b(0)
        for km in 0..=t1 {
            let weight = ((m - 1) as f64 * kh as f64 - km as f64).abs() / m as f64;
            total += weight * p1 * p2;
            p2 *= b / (km + 1) as f64;
        }
        p1 *= a / (kh + 1) as f64;
    }
    total
}

/// Algorithm 2 of the paper: split Eq. 16 into the two series `e₁`, `e₂`
/// and maintain their inner sums as prefix sums, giving `O(mK)` total:
///
/// ```text
/// m·E_e = Σ_kh (m−1)·k_h·P_a(k_h)·(2·C_b(T−1) − C_b(T₁))
///       − Σ_kh          P_a(k_h)·(2·S_b(T−1) − S_b(T₁))
/// ```
///
/// with `T = (m−1)k_h`, `T₁ = (m−1)K`, `C_b`/`S_b` the cumulative pmf and
/// first-moment sums of `Pois(b)`. pmf values come from the mode-anchored
/// recurrence, so arbitrarily large means are handled.
pub fn expression_error_alg2(a: f64, b: f64, m: usize, k: usize) -> f64 {
    check_args(a, b, m);
    if m == 1 {
        return 0.0;
    }
    let t1 = (m - 1) * k;
    let mut pa = Vec::new();
    let mut pb = Vec::new();
    poisson_pmf_into(a, 0, k as u64, &mut pa);
    poisson_pmf_into(b, 0, t1 as u64, &mut pb);
    // Prefix sums: cum[j] = Σ_{k≤j} P_b(k), mom[j] = Σ_{k≤j} k·P_b(k).
    let mut cum = vec![0.0; t1 + 1];
    let mut mom = vec![0.0; t1 + 1];
    let mut c = 0.0;
    let mut s = 0.0;
    for (j, &p) in pb.iter().enumerate() {
        c += p;
        s += j as f64 * p;
        cum[j] = c;
        mom[j] = s;
    }
    let c_tot = cum[t1];
    let s_tot = mom[t1];
    let prefix = |arr: &[f64], t: isize| -> f64 {
        if t < 0 {
            0.0
        } else {
            arr[(t as usize).min(t1)]
        }
    };
    let mut total = 0.0;
    for (kh, &p_a) in pa.iter().enumerate() {
        let t = ((m - 1) * kh) as isize - 1;
        let bracket_c = 2.0 * prefix(&cum, t) - c_tot;
        let bracket_s = 2.0 * prefix(&mom, t) - s_tot;
        total += p_a * ((m - 1) as f64 * kh as f64 * bracket_c - bracket_s);
    }
    total / m as f64
}

/// Adaptive-window Algorithm 2: instead of the fixed truncation `K`, sum
/// only over the mass windows of `Pois(a)` and `Pois(b)` (everything
/// outside carries < 1e-12 of mass). Equivalent to the `K → ∞` limit of
/// [`expression_error_alg2`] with cost `O(√a + √b)`.
///
/// ```
/// use gridtuner_core::expression::{expression_error_alg2, expression_error_windowed};
/// let (a, b, m) = (2.0, 10.0, 8);
/// let full = expression_error_windowed(a, b, m);
/// // The fixed-K series converges to the windowed value from below.
/// assert!(expression_error_alg2(a, b, m, 100) <= full + 1e-9);
/// assert!((expression_error_alg2(a, b, m, 100) - full).abs() < 1e-6);
/// ```
pub fn expression_error_windowed(a: f64, b: f64, m: usize) -> f64 {
    check_args(a, b, m);
    gridtuner_obs::counter!("expr.evals").inc();
    if m == 1 {
        return 0.0;
    }
    // Delegate to the batched kernel's table path: it *is* the canonical
    // definition of the windowed error (mass windows, stride-4 pmf fill,
    // 4-lane prefix fold), so a fresh call here and a memoised sweep
    // evaluation produce identical bits by construction.
    crate::expr_kernel::expression_error_kernel(a, b, m)
}

/// Sum of `E_e(i,j)` over all HGrids of one MGrid with per-HGrid means
/// `alphas` (`m = alphas.len()`). Uses the batched adaptive-window kernel:
/// identical rates are grouped and each group is evaluated once, with the
/// group results accumulated multiplicity-weighted in first-occurrence
/// order — deterministic, and bit-identical to the per-cell loop whenever
/// the rates are all distinct (group order = cell order).
///
/// One-shot convenience around [`ExprWorkspace`]: field sweeps reuse a
/// workspace and a cross-probe [`PmfMemo`] instead.
pub fn mgrid_expression_error(alphas: &[f64]) -> f64 {
    let memo = PmfMemo::default();
    match ExprWorkspace::new().mgrid_error(alphas, &memo) {
        Ok(e) => e,
        Err(e) => panic!("{e}"),
    }
}

/// Rejects a field containing non-finite or negative rates before any
/// kernel work — once per field, not once per cell.
fn validate_field(alpha: &CountMatrix) -> Result<(), CoreError> {
    for (i, &a) in alpha.as_slice().iter().enumerate() {
        if !a.is_finite() || a < 0.0 {
            return Err(CoreError::Data(format!(
                "α field has a non-finite or negative value {a} at cell {i}"
            )));
        }
    }
    Ok(())
}

/// Fallible core of [`total_expression_error`]: total expression error
/// `Σ_i Σ_j E_e(i,j)` for a partition via the batched kernel, with a
/// lattice-mismatched or invalid α field reported as [`CoreError::Data`]
/// instead of a panic (the session path's contract).
///
/// `memo` is the cross-probe pmf cache; pass `None` for a per-call cache
/// (rates still dedup across this field's MGrids, but nothing survives the
/// call). MGrids are swept in parallel over fixed-size contiguous blocks
/// with one [`ExprWorkspace`] per worker ([`gridtuner_par::par_sum_with`]);
/// block partials are reduced in block order and the blocking depends only
/// on the MGrid count, so the result is **bit-identical for every worker
/// count** and equals [`total_expression_error_seq`] exactly.
pub fn try_total_expression_error(
    alpha: &CountMatrix,
    partition: &Partition,
    memo: Option<&PmfMemo>,
) -> Result<f64, CoreError> {
    if alpha.side() != partition.hgrid_spec().side() {
        return Err(CoreError::Data(format!(
            "alpha field must live on the partition's HGrid lattice \
             (field side {}, lattice side {})",
            alpha.side(),
            partition.hgrid_spec().side()
        )));
    }
    validate_field(alpha)?;
    let _span = gridtuner_obs::span!("expression_error", side = partition.mgrid_spec().side());
    let local;
    let memo = match memo {
        Some(m) => m,
        None => {
            local = PmfMemo::default();
            &local
        }
    };
    let mgrids: Vec<_> = partition.mgrid_spec().cells().collect();
    Ok(gridtuner_par::par_sum_with(
        &mgrids,
        ExprWorkspace::new,
        |ws, &mcell| {
            ws.mgrid_error_trusted(partition.hgrid_iter(mcell).map(|h| alpha.get(h)), memo)
        },
    ))
}

/// [`try_total_expression_error`] generalised over any
/// [`SpatialPartition`]: the sum of per-region expression errors, where
/// each region's cell count `K` is per-call (the kernel's `m` is already a
/// per-call argument, so variable-size regions need no kernel change).
///
/// Regions are swept in dense id order over the same fixed-size contiguous
/// blocks as [`try_total_expression_error`], with one
/// `(workspace, cell buffer)` pair per worker, so the result is
/// bit-identical for every worker count. For a
/// [`UniformGrid`](gridtuner_spatial::UniformGrid) the region ids, cell
/// order and per-item values all coincide with the legacy MGrid sweep, so
/// the trait-dispatched uniform path is **bit-identical** to
/// [`try_total_expression_error`] on the wrapped
/// [`Partition`](gridtuner_spatial::Partition) — the differential the
/// testkit pins.
pub fn try_partition_expression_error<P: SpatialPartition + Sync>(
    alpha: &CountMatrix,
    partition: &P,
    memo: Option<&PmfMemo>,
) -> Result<f64, CoreError> {
    if alpha.side() != partition.hgrid_spec().side() {
        return Err(CoreError::Data(format!(
            "alpha field must live on the partition's HGrid lattice \
             (field side {}, lattice side {})",
            alpha.side(),
            partition.hgrid_spec().side()
        )));
    }
    validate_field(alpha)?;
    let _span = gridtuner_obs::span!("expression_error", regions = partition.n_regions());
    let local;
    let memo = match memo {
        Some(m) => m,
        None => {
            local = PmfMemo::default();
            &local
        }
    };
    let regions: Vec<RegionId> = (0..partition.n_regions()).map(RegionId).collect();
    Ok(gridtuner_par::par_sum_with(
        &regions,
        || (ExprWorkspace::new(), Vec::new()),
        |(ws, buf): &mut (ExprWorkspace, Vec<CellId>), &rid| {
            partition.region_cells_into(rid, buf);
            ws.mgrid_error_trusted(buf.iter().map(|&h| alpha.get(h)), memo)
        },
    ))
}

/// Sequential reference for [`try_partition_expression_error`]: one thread,
/// same fixed [`gridtuner_par::SUM_BLOCK`] association — the parallel
/// generic sweep must match it bit for bit.
pub fn partition_expression_error_seq<P: SpatialPartition>(
    alpha: &CountMatrix,
    partition: &P,
) -> Result<f64, CoreError> {
    if alpha.side() != partition.hgrid_spec().side() {
        return Err(CoreError::Data(format!(
            "alpha field must live on the partition's HGrid lattice \
             (field side {}, lattice side {})",
            alpha.side(),
            partition.hgrid_spec().side()
        )));
    }
    validate_field(alpha)?;
    let memo = PmfMemo::default();
    let mut ws = ExprWorkspace::new();
    let mut buf = Vec::new();
    let regions: Vec<RegionId> = (0..partition.n_regions()).map(RegionId).collect();
    let mut partials = Vec::with_capacity(regions.len().div_ceil(gridtuner_par::SUM_BLOCK).max(1));
    for block in regions.chunks(gridtuner_par::SUM_BLOCK) {
        // The canonical 4-lane in-block fold `par_sum_with` uses.
        let mut lanes = [0.0f64; 4];
        for (i, &rid) in block.iter().enumerate() {
            partition.region_cells_into(rid, &mut buf);
            lanes[i % 4] += ws.mgrid_error_trusted(buf.iter().map(|&h| alpha.get(h)), &memo);
        }
        partials.push((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
    }
    Ok(partials.iter().sum())
}

/// Total expression error `Σ_i Σ_j E_e(i,j)` for a partition, given the
/// per-HGrid mean field `alpha` on the partition's HGrid lattice.
///
/// Infallible form of [`try_total_expression_error`] with a per-call pmf
/// cache: panics on a lattice mismatch or an invalid α value (legacy
/// contract; sessions route through the fallible form).
pub fn total_expression_error(alpha: &CountMatrix, partition: &Partition) -> f64 {
    match try_total_expression_error(alpha, partition, None) {
        Ok(e) => e,
        Err(e) => panic!("{e}"),
    }
}

/// [`total_expression_error`] against a caller-owned cross-probe
/// [`PmfMemo`] — the warm-cache entry point field harnesses and benchmarks
/// use directly (sessions get it via
/// [`AlphaFieldCache::expression_error`]).
///
/// [`AlphaFieldCache::expression_error`]:
///     crate::alpha_cache::AlphaFieldCache::expression_error
pub fn total_expression_error_memo(
    alpha: &CountMatrix,
    partition: &Partition,
    memo: &PmfMemo,
) -> f64 {
    match try_total_expression_error(alpha, partition, Some(memo)) {
        Ok(e) => e,
        Err(e) => panic!("{e}"),
    }
}

/// Sequential reference implementation of [`total_expression_error`]: the
/// batched kernel on one thread, folding MGrids in the same fixed
/// [`gridtuner_par::SUM_BLOCK`] association the parallel sweep uses — so
/// the parallel path must match it **bit for bit**, a property the testkit
/// pins across worker counts.
pub fn total_expression_error_seq(alpha: &CountMatrix, partition: &Partition) -> f64 {
    assert_eq!(
        alpha.side(),
        partition.hgrid_spec().side(),
        "alpha field must live on the partition's HGrid lattice"
    );
    if let Err(e) = validate_field(alpha) {
        panic!("{e}");
    }
    let memo = PmfMemo::default();
    let mut ws = ExprWorkspace::new();
    let mgrids: Vec<_> = partition.mgrid_spec().cells().collect();
    let mut partials = Vec::with_capacity(mgrids.len().div_ceil(gridtuner_par::SUM_BLOCK).max(1));
    for block in mgrids.chunks(gridtuner_par::SUM_BLOCK) {
        // The canonical 4-lane in-block fold `par_sum_with` uses.
        let mut lanes = [0.0f64; 4];
        for (i, &mcell) in block.iter().enumerate() {
            lanes[i % 4] +=
                ws.mgrid_error_trusted(partition.hgrid_iter(mcell).map(|h| alpha.get(h)), &memo);
        }
        partials.push((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
    }
    partials.iter().sum()
}

/// The pre-batching sweep, kept verbatim for comparison: one
/// [`expression_error_windowed`] call per distinct rate per MGrid (a
/// per-MGrid memo, allocated per cell row), summed in cell order on one
/// thread. `tune_bench`'s kernel comparison and the CI `perf-smoke` gate
/// measure the batched kernel against this; it also serves as an
/// independent numeric cross-check (agreement to reassociation tolerance,
/// not bitwise — the batched path groups before it sums).
pub fn total_expression_error_percell(alpha: &CountMatrix, partition: &Partition) -> f64 {
    assert_eq!(
        alpha.side(),
        partition.hgrid_spec().side(),
        "alpha field must live on the partition's HGrid lattice"
    );
    partition
        .mgrid_spec()
        .cells()
        .map(|mcell| {
            let alphas: Vec<f64> = partition
                .hgrids_of(mcell)
                .into_iter()
                .map(|h| alpha.get(h))
                .collect();
            let m = alphas.len();
            if m <= 1 {
                return 0.0;
            }
            let total: f64 = alphas.iter().sum();
            let mut memo: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
            alphas
                .iter()
                .map(|&a| {
                    *memo
                        .entry(a.to_bits())
                        .or_insert_with(|| expression_error_windowed(a, (total - a).max(0.0), m))
                })
                .sum::<f64>()
        })
        .sum()
}

/// Lemma III.1's closed-form bound on the (truncated) expression error:
/// `E_e(i,j) < (1 − 2/m)·α_ij + (Σ_k α_ik)/m`.
pub fn lemma_upper_bound(a: f64, b: f64, m: usize) -> f64 {
    (1.0 - 2.0 / m as f64) * a + (a + b) / m as f64
}

fn check_args(a: f64, b: f64, m: usize) {
    // NaN fails the >= comparisons too, so the message must cover both
    // causes (the old "negative Poisson means" text blamed the wrong thing
    // for non-finite inputs).
    assert!(
        a.is_finite() && b.is_finite() && a >= 0.0 && b >= 0.0,
        "Poisson means must be finite and non-negative (a={a}, b={b})"
    );
    assert!(m >= 1, "m must be at least 1");
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridtuner_spatial::Partition;

    const CASES: &[(f64, f64, usize, usize)] = &[
        (1.0, 3.0, 4, 20),
        (0.5, 0.5, 2, 25),
        (2.0, 10.0, 9, 30),
        (0.0, 5.0, 4, 25),
        (5.0, 0.0, 4, 30),
        (3.3, 7.7, 16, 25),
    ];

    #[test]
    fn three_algorithms_agree() {
        for &(a, b, m, k) in CASES {
            let naive = expression_error_naive(a, b, m, k);
            let alg1 = expression_error_alg1(a, b, m, k);
            let alg2 = expression_error_alg2(a, b, m, k);
            assert!(
                (naive - alg1).abs() < 1e-10,
                "naive {naive} vs alg1 {alg1} at {a},{b},{m},{k}"
            );
            assert!(
                (alg1 - alg2).abs() < 1e-9,
                "alg1 {alg1} vs alg2 {alg2} at {a},{b},{m},{k}"
            );
        }
    }

    #[test]
    fn windowed_matches_large_k_alg2() {
        for &(a, b, m, _) in CASES {
            let exact = expression_error_alg2(a, b, m, 120);
            let win = expression_error_windowed(a, b, m);
            assert!(
                (exact - win).abs() < 1e-8,
                "alg2(K=120) {exact} vs windowed {win} at {a},{b},{m}"
            );
        }
    }

    #[test]
    fn windowed_survives_huge_means() {
        // n = 1 on a busy city: the MGrid mean is in the thousands. The
        // expression error must be finite, positive, and below the Lemma
        // III.1 bound.
        let (a, b, m) = (80.0, 7_920.0, 100);
        let e = expression_error_windowed(a, b, m);
        assert!(e.is_finite() && e > 0.0, "e = {e}");
        assert!(e < lemma_upper_bound(a, b, m));
    }

    #[test]
    fn m_equal_one_is_zero() {
        assert_eq!(expression_error_windowed(7.0, 0.0, 1), 0.0);
        assert_eq!(expression_error_alg2(7.0, 0.0, 1, 50), 0.0);
        assert_eq!(expression_error_naive(7.0, 0.0, 1, 10), 0.0);
    }

    #[test]
    fn zero_alpha_hgrid_reduces_to_mean_of_rest() {
        // a = 0 ⇒ λ_ij ≡ 0 and E|λ̄_ij − λ_ij| = E[λ_i/m] = b/m.
        let (b, m) = (12.0, 6);
        let e = expression_error_windowed(0.0, b, m);
        assert!((e - b / m as f64).abs() < 1e-9, "e = {e}");
    }

    #[test]
    fn uniform_mgrid_has_small_but_nonzero_error() {
        // Even a perfectly uniform mean field has expression error from
        // Poisson sampling noise; it must be far below an uneven field's.
        let m = 16;
        let uniform = expression_error_windowed(4.0, 4.0 * (m - 1) as f64, m);
        let uneven = expression_error_windowed(64.0, 0.0, m);
        assert!(uniform > 0.0);
        assert!(uneven > 3.0 * uniform, "uniform {uniform} uneven {uneven}");
    }

    #[test]
    fn truncated_series_is_monotone_in_k() {
        let (a, b, m) = (2.0, 6.0, 4);
        let mut prev = 0.0;
        for k in [1usize, 2, 4, 8, 16, 32] {
            let e = expression_error_alg2(a, b, m, k);
            assert!(e >= prev - 1e-12, "K={k}: {e} < {prev}");
            prev = e;
        }
        // And it converges to the windowed value.
        assert!((prev - expression_error_windowed(a, b, m)).abs() < 1e-6);
    }

    #[test]
    fn monte_carlo_validation() {
        // Simulate E|((m−1)X − Y)/m| with X~Pois(a), Y~Pois(b) via a tiny
        // inline Knuth sampler and compare to the analytic value.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut knuth = |lambda: f64| -> u64 {
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        };
        let (a, b, m) = (3.0, 9.0, 4usize);
        let trials = 200_000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let x = knuth(a) as f64;
            let y = knuth(b) as f64;
            acc += ((m - 1) as f64 * x - y).abs() / m as f64;
        }
        let mc = acc / trials as f64;
        let analytic = expression_error_windowed(a, b, m);
        assert!(
            (mc - analytic).abs() < 0.02 * analytic,
            "MC {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn lemma_bound_holds_for_truncated_sums() {
        for &(a, b, m, k) in CASES {
            if m < 2 {
                continue;
            }
            let e = expression_error_alg2(a, b, m, k);
            assert!(
                e < lemma_upper_bound(a, b, m) + 1e-12,
                "bound violated at {a},{b},{m},{k}"
            );
        }
    }

    #[test]
    fn mgrid_error_sums_hgrid_errors() {
        let alphas = [1.0, 2.0, 3.0, 4.0];
        let total: f64 = alphas
            .iter()
            .map(|&a| expression_error_windowed(a, 10.0 - a, 4))
            .sum();
        assert!((mgrid_expression_error(&alphas) - total).abs() < 1e-12);
        assert_eq!(mgrid_expression_error(&[5.0]), 0.0);
        assert_eq!(mgrid_expression_error(&[]), 0.0);
    }

    #[test]
    fn total_expression_error_matches_serial_sum() {
        let p = Partition::new(2, 2);
        let alpha = CountMatrix::from_vec(
            4,
            vec![
                1.0, 2.0, 0.5, 0.0, //
                3.0, 4.0, 1.5, 2.5, //
                0.0, 0.0, 8.0, 0.0, //
                0.0, 0.0, 0.0, 0.0,
            ],
        )
        .unwrap();
        let total = total_expression_error(&alpha, &p);
        let mut manual = 0.0;
        for mcell in p.mgrid_spec().cells() {
            let alphas: Vec<f64> = p
                .hgrids_of(mcell)
                .into_iter()
                .map(|h| alpha.get(h))
                .collect();
            manual += mgrid_expression_error(&alphas);
        }
        assert!((total - manual).abs() < 1e-9);
        // The concentrated MGrid (all mass in one HGrid) dominates.
        assert!(total > 0.0);
    }

    #[test]
    #[should_panic(expected = "HGrid lattice")]
    fn total_expression_error_validates_lattice() {
        let p = Partition::new(2, 2);
        let alpha = CountMatrix::zeros(5);
        total_expression_error(&alpha, &p);
    }

    fn uneven_field(side: u32) -> CountMatrix {
        let mut alpha = CountMatrix::zeros(side);
        for r in 0..side as usize {
            for c in 0..side as usize {
                // Quantised like a real estimate (count / days), with
                // plenty of repeats for the dedup path.
                alpha.as_mut_slice()[r * side as usize + c] = ((r * 13 + c * 7) % 9) as f64 / 5.0;
            }
        }
        alpha
    }

    #[test]
    fn parallel_seq_and_percell_paths_agree() {
        let p = Partition::new(4, 6);
        let alpha = uneven_field(24);
        let par = total_expression_error(&alpha, &p);
        let seq = total_expression_error_seq(&alpha, &p);
        // The parallel sweep replicates the sequential association exactly.
        assert_eq!(par.to_bits(), seq.to_bits(), "par {par} vs seq {seq}");
        // The pre-batching per-cell loop agrees to reassociation tolerance.
        let percell = total_expression_error_percell(&alpha, &p);
        assert!(
            (par - percell).abs() <= 1e-9 * percell.max(1.0),
            "batched {par} vs per-cell {percell}"
        );
    }

    #[test]
    fn warm_memo_does_not_move_a_bit() {
        use crate::expr_kernel::PmfMemo;
        let p = Partition::new(3, 5);
        let alpha = uneven_field(15);
        let memo = PmfMemo::default();
        let cold = total_expression_error_memo(&alpha, &p, &memo);
        assert!(memo.entries() > 0, "field sweep must populate the memo");
        let warm = total_expression_error_memo(&alpha, &p, &memo);
        assert_eq!(cold.to_bits(), warm.to_bits());
        assert!(memo.hits() > 0, "second sweep must hit the memo");
    }

    #[test]
    fn invalid_fields_are_data_errors_on_the_fallible_path() {
        let p = Partition::new(2, 2);
        let mut alpha = CountMatrix::zeros(4);
        alpha.as_mut_slice()[5] = f64::NAN;
        let err = try_total_expression_error(&alpha, &p, None).unwrap_err();
        match err {
            CoreError::Data(msg) => assert!(msg.contains("cell 5"), "{msg}"),
            other => panic!("expected Data, got {other:?}"),
        }
        let mismatched = CountMatrix::zeros(5);
        match try_total_expression_error(&mismatched, &p, None).unwrap_err() {
            CoreError::Data(msg) => assert!(msg.contains("HGrid lattice"), "{msg}"),
            other => panic!("expected Data, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn check_args_names_non_finite_means() {
        expression_error_windowed(f64::NAN, 1.0, 4);
    }

    #[test]
    fn trait_uniform_sweep_is_bit_identical_to_legacy() {
        use gridtuner_spatial::UniformGrid;
        let p = Partition::new(4, 6);
        let alpha = uneven_field(24);
        let legacy = try_total_expression_error(&alpha, &p, None).unwrap();
        let traited = try_partition_expression_error(&alpha, &UniformGrid::new(p), None).unwrap();
        assert_eq!(legacy.to_bits(), traited.to_bits(), "{legacy} vs {traited}");
        let seq = partition_expression_error_seq(&alpha, &UniformGrid::new(p)).unwrap();
        assert_eq!(legacy.to_bits(), seq.to_bits());
    }

    #[test]
    fn quadtree_and_rect_sweeps_match_manual_region_sums() {
        use gridtuner_spatial::{QuadTreePartition, RectGrid, RegionId, SpatialPartition};
        let alpha = uneven_field(8);
        let q = QuadTreePartition::uniform_depth(8, 1)
            .and_then(|q| q.split(RegionId(0)))
            .unwrap();
        let swept = try_partition_expression_error(&alpha, &q, None).unwrap();
        let manual: f64 = (0..q.n_regions())
            .map(|r| {
                let rates: Vec<f64> = q
                    .region_cells(RegionId(r))
                    .iter()
                    .map(|&h| alpha.get(h))
                    .collect();
                mgrid_expression_error(&rates)
            })
            .sum();
        assert!(
            (swept - manual).abs() < 1e-9,
            "quadtree {swept} vs {manual}"
        );

        let r = RectGrid::for_budget(2, 4, 8);
        let alpha = uneven_field(r.hgrid_spec().side());
        let swept = try_partition_expression_error(&alpha, &r, None).unwrap();
        let manual: f64 = (0..r.n_regions())
            .map(|i| {
                let rates: Vec<f64> = r
                    .region_cells(RegionId(i))
                    .iter()
                    .map(|&h| alpha.get(h))
                    .collect();
                mgrid_expression_error(&rates)
            })
            .sum();
        assert!((swept - manual).abs() < 1e-9, "rect {swept} vs {manual}");
    }

    #[test]
    fn partition_sweep_rejects_mismatched_lattice() {
        use gridtuner_spatial::QuadTreePartition;
        let q = QuadTreePartition::root(8);
        let alpha = CountMatrix::zeros(5);
        match try_partition_expression_error(&alpha, &q, None).unwrap_err() {
            CoreError::Data(msg) => assert!(msg.contains("HGrid lattice"), "{msg}"),
            other => panic!("expected Data, got {other:?}"),
        }
    }

    #[test]
    fn expression_error_decreases_with_n_on_fixed_field() {
        // The paper's core monotonicity (Fig. 3): finer MGrids → smaller
        // total expression error, on the same underlying α field.
        // Build an uneven 8×8 α field, then compare partitions s=1,2,4,8.
        let side = 8u32;
        let mut alpha = CountMatrix::zeros(side);
        for r in 0..side as usize {
            for c in 0..side as usize {
                // Hotspot in one corner.
                alpha.as_mut_slice()[r * side as usize + c] = 20.0 / (1.0 + (r * r + c * c) as f64);
            }
        }
        let mut prev = f64::INFINITY;
        for s in [1u32, 2, 4, 8] {
            let part = Partition::for_budget(s, side);
            let e = total_expression_error(&alpha, &part);
            assert!(
                e <= prev + 1e-9,
                "expression error should fall with n: s={s}, e={e}, prev={prev}"
            );
            prev = e;
        }
        // At s = 8 every MGrid is a single HGrid: error exactly zero.
        assert!(prev.abs() < 1e-12);
    }
}
