//! Estimation of the per-HGrid mean `α_ij`.
//!
//! The paper estimates `α_ij` as "the average number of events at the same
//! period of all workdays in last one month" (Sec. V-B). This module turns a
//! raw event log into that estimate on an arbitrary grid, so the same event
//! set can back every probed partition (whose HGrid lattice side changes
//! with `n`).

use gridtuner_spatial::{CountMatrix, Event, GridSpec, SlotClock};

/// Configuration of the α-estimation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlphaWindow {
    /// Slot-of-day to average over (paper default: 16 = 8:00–8:30 A.M.).
    pub slot_of_day: u32,
    /// First day (inclusive) of the history window.
    pub day_start: u32,
    /// Last day (exclusive) of the history window.
    pub day_end: u32,
    /// Restrict to weekdays (paper: workdays only).
    pub weekdays_only: bool,
}

impl Default for AlphaWindow {
    fn default() -> Self {
        AlphaWindow {
            slot_of_day: 16,
            day_start: 0,
            day_end: 28,
            weekdays_only: true,
        }
    }
}

impl AlphaWindow {
    /// The matching days in the window, respecting the weekday mask
    /// (day 0 is a Monday, see [`SlotClock::is_weekday`]).
    pub fn days(&self, clock: &SlotClock) -> Vec<u32> {
        (self.day_start..self.day_end)
            .filter(|&d| !self.weekdays_only || clock.is_weekday(clock.slot_at(d, 0)))
            .collect()
    }
}

/// Estimates the mean event field `α` on `spec` by averaging the event
/// counts of the window's matching (day, slot) pairs.
///
/// Events outside the matching slots or the unit square are ignored.
/// Returns zeros when the window matches no days.
pub fn estimate_alpha(
    events: &[Event],
    spec: GridSpec,
    clock: &SlotClock,
    window: &AlphaWindow,
) -> CountMatrix {
    let _span = gridtuner_obs::span!("alpha.scan", events = events.len(), side = spec.side());
    let days = window.days(clock);
    let mut alpha = CountMatrix::zeros(spec.side());
    if days.is_empty() {
        return alpha;
    }
    // Mark matching global slots for O(1) membership checks.
    let max_slot = days
        .iter()
        .map(|&d| clock.slot_at(d, window.slot_of_day).index())
        .max()
        .unwrap_or(0); // non-empty: guarded above
    let mut matching = vec![false; max_slot + 1];
    for &d in &days {
        matching[clock.slot_at(d, window.slot_of_day).index()] = true;
    }
    for e in events {
        let s = e.slot(clock).index();
        if s < matching.len() && matching[s] {
            if let Some(cell) = spec.cell_of(&e.loc) {
                *alpha.get_mut(cell) += 1.0;
            }
        }
    }
    alpha.scale(1.0 / days.len() as f64);
    alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridtuner_spatial::Point;

    fn clock() -> SlotClock {
        SlotClock::default()
    }

    #[test]
    fn default_window_is_the_papers() {
        let w = AlphaWindow::default();
        assert_eq!(w.slot_of_day, 16); // 8:00 A.M.
        assert_eq!(w.day_end - w.day_start, 28); // "last one month"
        assert!(w.weekdays_only);
        assert_eq!(w.days(&clock()).len(), 20); // 4 weeks × 5 workdays
    }

    #[test]
    fn alpha_averages_over_matching_days() {
        let c = clock();
        let w = AlphaWindow {
            slot_of_day: 0,
            day_start: 0,
            day_end: 2,
            weekdays_only: false,
        };
        // Day 0 slot 0: two events in cell 0. Day 1 slot 0: one event in
        // cell 0. Other slots: noise that must be ignored.
        let events = vec![
            Event::new(Point::new(0.1, 0.1), 0),
            Event::new(Point::new(0.2, 0.2), 10),
            Event::new(Point::new(0.1, 0.1), 24 * 60), // day 1 slot 0
            Event::new(Point::new(0.1, 0.1), 45),      // slot 1: ignored
            Event::new(Point::new(0.9, 0.9), 24 * 60 * 3), // day 3: ignored
        ];
        let alpha = estimate_alpha(&events, GridSpec::new(2), &c, &w);
        assert!((alpha.as_slice()[0] - 1.5).abs() < 1e-12);
        assert_eq!(alpha.as_slice()[3], 0.0);
    }

    #[test]
    fn weekday_mask_drops_weekend_events() {
        let c = clock();
        let w = AlphaWindow {
            slot_of_day: 0,
            day_start: 0,
            day_end: 7,
            weekdays_only: true,
        };
        // One event per day at slot 0, same cell.
        let events: Vec<Event> = (0..7)
            .map(|d| Event::new(Point::new(0.5, 0.5), d * 24 * 60))
            .collect();
        let alpha = estimate_alpha(&events, GridSpec::new(1), &c, &w);
        // 5 weekday events averaged over 5 weekdays.
        assert!((alpha.as_slice()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_returns_zeros() {
        let c = clock();
        let w = AlphaWindow {
            slot_of_day: 0,
            day_start: 5,
            day_end: 5,
            weekdays_only: false,
        };
        let events = vec![Event::new(Point::new(0.5, 0.5), 0)];
        let alpha = estimate_alpha(&events, GridSpec::new(2), &c, &w);
        assert_eq!(alpha.total(), 0.0);
    }

    #[test]
    fn alpha_mass_is_resolution_invariant() {
        // The same events binned at different resolutions keep total mass.
        let c = clock();
        let w = AlphaWindow {
            slot_of_day: 0,
            day_start: 0,
            day_end: 1,
            weekdays_only: false,
        };
        let events: Vec<Event> = (0..50)
            .map(|i| {
                Event::new(
                    Point::new((i as f64 * 0.619) % 1.0, (i as f64 * 0.317) % 1.0),
                    i % 30,
                )
            })
            .collect();
        let a8 = estimate_alpha(&events, GridSpec::new(8), &c, &w);
        let a13 = estimate_alpha(&events, GridSpec::new(13), &c, &w);
        assert!((a8.total() - a13.total()).abs() < 1e-9);
        assert!((a8.total() - 50.0).abs() < 1e-9);
    }
}
