//! The `GridTuner` facade: events + a model-error source in, optimal
//! partition out.
//!
//! This is the library's front door for the paper's end-to-end workflow
//! (Sec. IV): estimate `α`, build the `UpperBound` oracle, run the chosen
//! search algorithm, and return the winning [`Partition`] together with the
//! search trace.

use crate::alpha::AlphaWindow;
use crate::search::{
    brute_force, brute_force_parallel, iterative_method, ternary_search, ErrorOracle, SearchOutcome,
};
use crate::upper_bound::{ModelErrorFn, UpperBoundOracle};
use gridtuner_obs as obs;
use gridtuner_spatial::{Event, Partition, SlotClock};

/// Which search algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Exhaustive scan (always optimal, `O(√N)` model trainings).
    BruteForce,
    /// Algorithm 4 (`O(log √N)` model trainings).
    Ternary,
    /// Algorithm 5 with the given start point and search bound.
    Iterative {
        /// Initial MGrid side (paper default: 16 ≈ 2 km grids).
        init: u32,
        /// Search boundary `b`.
        bound: u32,
    },
}

/// Tuner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerConfig {
    /// `√N`: side of the HGrid budget lattice (paper: 128).
    pub hgrid_budget_side: u32,
    /// Inclusive range of MGrid sides to search (paper: 4..=76).
    pub side_range: (u32, u32),
    /// Search algorithm.
    pub strategy: SearchStrategy,
    /// α-estimation window.
    pub alpha_window: AlphaWindow,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            hgrid_budget_side: 128,
            side_range: (4, 76),
            strategy: SearchStrategy::Iterative { init: 16, bound: 4 },
            alpha_window: AlphaWindow::default(),
        }
    }
}

/// Outcome of a tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerResult {
    /// The selected partition (MGrid side = `outcome.side`).
    pub partition: Partition,
    /// The search trace (selected side, error, evaluation count, probes).
    pub outcome: SearchOutcome,
    /// Full event-log passes the oracle performed (the α-cache invariant:
    /// always 1, however many sides were probed).
    pub alpha_rescans: u64,
}

/// The facade itself. Stateless apart from its configuration; create one
/// per tuning task.
#[derive(Debug, Clone, Default)]
pub struct GridTuner {
    config: TunerConfig,
}

impl GridTuner {
    /// Creates a tuner with the given configuration.
    pub fn new(config: TunerConfig) -> Self {
        assert!(
            config.side_range.0 >= 1 && config.side_range.0 <= config.side_range.1,
            "invalid side range"
        );
        GridTuner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TunerConfig {
        &self.config
    }

    /// Runs the configured search against the upper-bound oracle built from
    /// `events` (for the expression-error leg) and `model` (for the
    /// model-error leg).
    pub fn tune<M: ModelErrorFn>(
        &self,
        events: &[Event],
        clock: SlotClock,
        model: M,
    ) -> TunerResult {
        let (lo, hi) = self.config.side_range;
        let _span = obs::span!("tune", lo = lo, hi = hi, events = events.len());
        let mut oracle = UpperBoundOracle::new(
            events.to_vec(),
            clock,
            self.config.alpha_window,
            self.config.hgrid_budget_side,
            model,
        );
        let outcome = {
            let probe = |s: u32| oracle.eval(s);
            match self.config.strategy {
                SearchStrategy::BruteForce => brute_force(probe, lo, hi),
                SearchStrategy::Ternary => ternary_search(probe, lo, hi),
                SearchStrategy::Iterative { init, bound } => {
                    iterative_method(probe, lo, hi, init, bound)
                }
            }
        };
        obs::gauge!("tune.selected_side").set(f64::from(outcome.side));
        TunerResult {
            partition: Partition::for_budget(outcome.side, self.config.hgrid_budget_side),
            outcome,
            alpha_rescans: oracle.alpha_rescans(),
        }
    }

    /// Brute-force over the configured side range with the probes spread
    /// across the worker pool. Deterministic: the result (side, error,
    /// probe trail) is identical to `tune` with
    /// [`SearchStrategy::BruteForce`] and the same model closure. Requires
    /// a shareable model leg (`Fn + Sync`) — cheap analytic models or
    /// pre-tabulated `n·MAE` curves; per-probe training stays on the
    /// sequential path.
    pub fn tune_brute_parallel<M: Fn(u32) -> f64 + Sync>(
        &self,
        events: &[Event],
        clock: SlotClock,
        model: M,
    ) -> TunerResult {
        let (lo, hi) = self.config.side_range;
        let _span = obs::span!("tune", lo = lo, hi = hi, events = events.len());
        let oracle = UpperBoundOracle::new(
            events.to_vec(),
            clock,
            self.config.alpha_window,
            self.config.hgrid_budget_side,
            model,
        );
        let outcome = brute_force_parallel(&oracle, lo, hi);
        obs::gauge!("tune.selected_side").set(f64::from(outcome.side));
        TunerResult {
            partition: Partition::for_budget(outcome.side, self.config.hgrid_budget_side),
            outcome,
            alpha_rescans: oracle.alpha_rescans(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridtuner_spatial::Point;

    fn skewed_events() -> Vec<Event> {
        // A dense hotspot plus uniform background, repeated daily at slot 0.
        // A cheap xorshift keeps the field smooth (no lattice artifacts).
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut unit = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut out = Vec::new();
        for d in 0..7u32 {
            for i in 0..1_200usize {
                let (x, y) = if i % 2 == 0 {
                    // Hotspot: sum of uniforms ≈ Gaussian around (0.3, 0.3).
                    (
                        0.2 + 0.2 * (unit() + unit()) / 2.0,
                        0.2 + 0.2 * (unit() + unit()) / 2.0,
                    )
                } else {
                    (unit(), unit())
                };
                out.push(Event::new(Point::new(x, y), d * 24 * 60 + (i % 30) as u32));
            }
        }
        out
    }

    fn cfg(strategy: SearchStrategy) -> TunerConfig {
        TunerConfig {
            hgrid_budget_side: 64,
            side_range: (2, 20),
            strategy,
            alpha_window: AlphaWindow {
                slot_of_day: 0,
                day_start: 0,
                day_end: 7,
                weekdays_only: false,
            },
        }
    }

    #[test]
    fn all_strategies_land_near_brute_force() {
        let events = skewed_events();
        let clock = SlotClock::default();
        let model = |s: u32| (s * s) as f64 * 1.5;
        let bf = GridTuner::new(cfg(SearchStrategy::BruteForce)).tune(&events, clock, model);
        let tern = GridTuner::new(cfg(SearchStrategy::Ternary)).tune(&events, clock, model);
        let iter = GridTuner::new(cfg(SearchStrategy::Iterative { init: 16, bound: 4 }))
            .tune(&events, clock, model);
        // Heuristics land near the optimum but are not guaranteed to hit it
        // (the paper's Table IV reports 52–96% hit probabilities and ≥ 97%
        // optimal ratios); 10% headroom accommodates the jagged tail.
        assert!(tern.outcome.error <= bf.outcome.error * 1.10);
        assert!(iter.outcome.error <= bf.outcome.error * 1.10);
        // And use strictly fewer model trainings.
        assert!(tern.outcome.evals < bf.outcome.evals);
        assert!(iter.outcome.evals < bf.outcome.evals);
    }

    #[test]
    fn result_partition_matches_selected_side() {
        let events = skewed_events();
        let tuner = GridTuner::new(cfg(SearchStrategy::BruteForce));
        let res = tuner.tune(&events, SlotClock::default(), |s: u32| (s * s) as f64);
        assert_eq!(res.partition.mgrid_side(), res.outcome.side);
        assert!(res.partition.total_hgrids() >= 64 * 64);
    }

    #[test]
    fn parallel_brute_tune_matches_sequential_and_scans_once() {
        let events = skewed_events();
        let clock = SlotClock::default();
        let model = |s: u32| (s * s) as f64 * 1.5;
        let tuner = GridTuner::new(cfg(SearchStrategy::BruteForce));
        let seq = tuner.tune(&events, clock, model);
        let par = tuner.tune_brute_parallel(&events, clock, model);
        assert_eq!(par.outcome.side, seq.outcome.side);
        assert_eq!(par.outcome.error.to_bits(), seq.outcome.error.to_bits());
        assert_eq!(par.outcome.probes, seq.outcome.probes);
        // The α-cache invariant: one event-log pass regardless of probes.
        assert_eq!(seq.alpha_rescans, 1);
        assert_eq!(par.alpha_rescans, 1);
    }

    #[test]
    fn default_config_mirrors_the_paper() {
        let c = TunerConfig::default();
        assert_eq!(c.hgrid_budget_side, 128);
        assert_eq!(c.side_range, (4, 76));
        assert_eq!(c.strategy, SearchStrategy::Iterative { init: 16, bound: 4 });
    }

    #[test]
    #[should_panic(expected = "invalid side range")]
    fn bad_range_rejected() {
        GridTuner::new(TunerConfig {
            side_range: (10, 2),
            ..TunerConfig::default()
        });
    }
}
