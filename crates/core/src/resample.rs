//! Seeded event-log bootstrap resampling.
//!
//! The uncertainty layer re-tunes B resampled copies of the event log to
//! turn the point estimate of the optimal grid size into a confidence
//! set. Everything downstream (α derivation, the expression-error
//! kernel, search) is already deterministic, so the only new source of
//! randomness is the resampling itself — and it must be as reproducible
//! as the rest of the pipeline:
//!
//! * **one `u64` seed** describes the whole bootstrap run;
//! * each replicate derives its own independent stream with a
//!   splitmix64-style mix of `(seed, replicate_index)`, so replicates
//!   can be recomputed individually (the oracle pair
//!   `bootstrap-replicate-vs-direct` materialises a single replicate's
//!   log and re-tunes it out of band);
//! * draws come from the stream in index order with no dependence on
//!   thread count or scheduling — the resampled log for
//!   `(seed, replicate)` is a pure function of the original log.
//!
//! The generator is splitmix64 (Steele et al., the canonical seeding
//! sequence of xoshiro/xoroshiro): a 64-bit Weyl sequence fed through a
//! murmur-style finaliser. It is tiny, fast, equidistributed over the
//! full 2⁶⁴ period, and — unlike the workspace `StdRng` shim — trivially
//! reimplementable in any language, which keeps the goldens portable.

use gridtuner_spatial::Event;

/// Golden-ratio increment of the splitmix64 Weyl sequence.
const SPLITMIX_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// One splitmix64 step: advances `state` by the Weyl constant and
/// returns the finalised output. The canonical constants from the
/// reference implementation.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seed of replicate `replicate`'s private stream.
///
/// Derived by running the master seed one splitmix step, XORing in the
/// replicate index, and finalising with a second step — so streams for
/// different replicates (and different master seeds) are decorrelated
/// even for adjacent indices, and replicate 0 never collides with the
/// raw master seed.
#[inline]
pub fn replicate_seed(seed: u64, replicate: u64) -> u64 {
    let mut s = seed;
    let mixed = splitmix64(&mut s) ^ replicate.wrapping_mul(SPLITMIX_GAMMA);
    let mut s2 = mixed;
    splitmix64(&mut s2)
}

/// A single replicate's deterministic draw stream.
///
/// A thin splitmix64 wrapper: `next_index(n)` maps the raw output into
/// `0..n` by rejection-free multiply-shift (Lemire's method), which is
/// unbiased-enough for bootstrap purposes and — crucially — consumes
/// exactly one output per draw, so the stream position is a pure
/// function of the draw count.
#[derive(Debug, Clone)]
pub struct ReplicateRng {
    state: u64,
}

impl ReplicateRng {
    /// The stream for `(seed, replicate)`.
    pub fn new(seed: u64, replicate: u64) -> Self {
        ReplicateRng {
            state: replicate_seed(seed, replicate),
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// A draw in `0..n` via the multiply-shift range reduction
    /// (`(x * n) >> 64`). `n` must be non-zero.
    #[inline]
    pub fn next_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "next_index needs a non-empty range");
        let x = self.next_u64() as u128;
        ((x * n as u128) >> 64) as usize
    }
}

/// The with-replacement bootstrap resample of `events` for replicate
/// `replicate` of the run seeded by `seed`.
///
/// Draws `events.len()` indices from the replicate's private stream in
/// order, preserving the *draw* order in the output (the resampled log
/// is a log like any other: downstream α derivation is order-sensitive
/// only in its fold order, which this fixes deterministically).
///
/// An empty log resamples to an empty log.
pub fn resample_events(events: &[Event], seed: u64, replicate: u64) -> Vec<Event> {
    if events.is_empty() {
        return Vec::new();
    }
    let mut rng = ReplicateRng::new(seed, replicate);
    (0..events.len())
        .map(|_| events[rng.next_index(events.len())])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridtuner_spatial::Point;

    fn log(n: usize) -> Vec<Event> {
        (0..n)
            .map(|i| {
                Event::new(
                    Point::new((i as f64 * 0.618) % 1.0, (i as f64 * 0.414) % 1.0),
                    i as u32,
                )
            })
            .collect()
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference outputs for seed 1234567 from the canonical
        // splitmix64 implementation.
        let mut s = 1234567u64;
        let first = splitmix64(&mut s);
        let second = splitmix64(&mut s);
        assert_ne!(first, second);
        // Determinism: same seed, same outputs.
        let mut s2 = 1234567u64;
        assert_eq!(splitmix64(&mut s2), first);
        assert_eq!(splitmix64(&mut s2), second);
    }

    #[test]
    fn resample_is_deterministic_per_seed_and_replicate() {
        let events = log(97);
        let a = resample_events(&events, 42, 3);
        let b = resample_events(&events, 42, 3);
        assert_eq!(a.len(), events.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.loc.x.to_bits(), y.loc.x.to_bits());
            assert_eq!(x.loc.y.to_bits(), y.loc.y.to_bits());
            assert_eq!(x.minute, y.minute);
        }
    }

    #[test]
    fn replicates_differ_and_seeds_differ() {
        let events = log(64);
        let r0 = resample_events(&events, 7, 0);
        let r1 = resample_events(&events, 7, 1);
        let other_seed = resample_events(&events, 8, 0);
        let key = |v: &[Event]| -> Vec<u32> { v.iter().map(|e| e.minute).collect() };
        assert_ne!(key(&r0), key(&r1), "replicate streams must be independent");
        assert_ne!(key(&r0), key(&other_seed), "seeds must decorrelate");
    }

    #[test]
    fn resample_draws_only_from_the_log() {
        let events = log(10);
        let minutes: Vec<u32> = events.iter().map(|e| e.minute).collect();
        for r in 0..20 {
            for e in resample_events(&events, 99, r) {
                assert!(minutes.contains(&e.minute));
            }
        }
    }

    #[test]
    fn empty_log_resamples_empty() {
        assert!(resample_events(&[], 1, 0).is_empty());
    }

    #[test]
    fn index_reduction_is_in_range_and_covers() {
        let mut rng = ReplicateRng::new(0, 0);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let i = rng.next_index(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all indices reachable");
    }
}
