//! Scalar accuracy metrics over count fields.
//!
//! The paper reports "Order Count Bias" (summed absolute differences);
//! this module adds the standard companions (MAE, RMSE, total-count bias)
//! used by the experiment harness and by downstream users comparing
//! predictors.

use gridtuner_spatial::{CountMatrix, SpatialError};

/// Mean absolute error per cell.
pub fn mae(pred: &CountMatrix, actual: &CountMatrix) -> Result<f64, SpatialError> {
    Ok(pred.l1_distance(actual)? / pred.len() as f64)
}

/// Root mean squared error per cell.
pub fn rmse(pred: &CountMatrix, actual: &CountMatrix) -> Result<f64, SpatialError> {
    if pred.side() != actual.side() {
        return Err(SpatialError::ShapeMismatch {
            expected: format!("side {}", pred.side()),
            got: format!("side {}", actual.side()),
        });
    }
    let mse: f64 = pred
        .as_slice()
        .iter()
        .zip(actual.as_slice())
        .map(|(p, a)| (p - a).powi(2))
        .sum::<f64>()
        / pred.len() as f64;
    Ok(mse.sqrt())
}

/// Signed total-count bias `Σ pred − Σ actual` (positive = over-forecast).
pub fn total_bias(pred: &CountMatrix, actual: &CountMatrix) -> Result<f64, SpatialError> {
    if pred.side() != actual.side() {
        return Err(SpatialError::ShapeMismatch {
            expected: format!("side {}", pred.side()),
            got: format!("side {}", actual.side()),
        });
    }
    Ok(pred.total() - actual.total())
}

/// Symmetric mean absolute percentage error over cells with
/// `pred + actual > 0` (the taxi-demand literature's sMAPE variant, which
/// ignores empty–empty cells instead of dividing by zero).
pub fn smape(pred: &CountMatrix, actual: &CountMatrix) -> Result<f64, SpatialError> {
    if pred.side() != actual.side() {
        return Err(SpatialError::ShapeMismatch {
            expected: format!("side {}", pred.side()),
            got: format!("side {}", actual.side()),
        });
    }
    let mut acc = 0.0;
    let mut n = 0usize;
    for (p, a) in pred.as_slice().iter().zip(actual.as_slice()) {
        let denom = p.abs() + a.abs();
        if denom > 0.0 {
            acc += (p - a).abs() / (denom / 2.0);
            n += 1;
        }
    }
    Ok(if n == 0 { 0.0 } else { acc / n as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: &[f64]) -> CountMatrix {
        CountMatrix::from_vec((v.len() as f64).sqrt() as u32, v.to_vec()).unwrap()
    }

    #[test]
    fn mae_and_rmse_known_values() {
        let p = m(&[1.0, 2.0, 3.0, 4.0]);
        let a = m(&[0.0, 2.0, 5.0, 4.0]);
        assert!((mae(&p, &a).unwrap() - 0.75).abs() < 1e-12);
        assert!((rmse(&p, &a).unwrap() - (5.0f64 / 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bias_is_signed() {
        let p = m(&[3.0, 3.0, 3.0, 3.0]);
        let a = m(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(total_bias(&p, &a).unwrap(), 8.0);
        assert_eq!(total_bias(&a, &p).unwrap(), -8.0);
    }

    #[test]
    fn smape_ignores_empty_empty_cells() {
        let p = m(&[0.0, 2.0, 0.0, 0.0]);
        let a = m(&[0.0, 2.0, 0.0, 4.0]);
        // Cell 1: exact → 0. Cell 3: |0-4|/2 = 2. Two counted cells.
        assert!((smape(&p, &a).unwrap() - 1.0).abs() < 1e-12);
        // All-empty fields define sMAPE as zero.
        assert_eq!(smape(&m(&[0.0; 4]), &m(&[0.0; 4])).unwrap(), 0.0);
    }

    #[test]
    fn rmse_dominates_mae() {
        let p = m(&[5.0, 0.0, 0.0, 0.0]);
        let a = m(&[0.0, 0.0, 0.0, 0.0]);
        assert!(rmse(&p, &a).unwrap() >= mae(&p, &a).unwrap());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let p = CountMatrix::zeros(2);
        let a = CountMatrix::zeros(3);
        assert!(mae(&p, &a).is_err());
        assert!(rmse(&p, &a).is_err());
        assert!(total_bias(&p, &a).is_err());
        assert!(smape(&p, &a).is_err());
    }
}
