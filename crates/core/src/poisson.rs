//! Numerically-stable Poisson machinery.
//!
//! The paper models the event count of every HGrid as
//! `λ_ij ~ Pois(α_ij)` (Sec. III-B) and its formulas multiply Poisson pmf
//! values whose means can reach the thousands (the whole of NYC in one slot
//! when `n = 1`). Naively starting recurrences from `e^{-λ}` underflows for
//! `λ ≳ 745`, silently zeroing every later term, so all pmf evaluation here
//! goes through [`poisson_pmf_range`], which anchors the recurrence at the
//! distribution's mode in log space and walks outward.

/// Natural log of the Gamma function (Lanczos approximation, g = 7, 9
/// coefficients; |relative error| < 1e-13 over the positive reals).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    if x < 0.5 {
        // Reflection formula keeps the small-argument branch accurate.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Entries in the precomputed `ln k!` table: every `k < 1024` is served
/// from memory, which removes the Lanczos [`ln_gamma`] evaluation from the
/// pmf mode-anchor recurrence for all realistic per-cell rates.
const LN_FACT_TABLE_LEN: usize = 1024;

/// The `ln k!` lookup table, built once on first use. Each entry is the
/// value [`ln_gamma`]`(k + 1)` would return, so table hits are
/// bit-identical to the direct evaluation.
fn ln_fact_table() -> &'static [f64] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<f64>> = OnceLock::new();
    TABLE.get_or_init(|| {
        (0..LN_FACT_TABLE_LEN)
            .map(|k| ln_gamma(k as f64 + 1.0))
            .collect()
    })
}

/// Natural log of `k!` for integer `k`. Served from a precomputed table
/// for `k < 1024` (bit-identical to the [`ln_gamma`] evaluation it
/// replaces), falling back to Lanczos for larger arguments.
pub fn ln_factorial(k: u64) -> f64 {
    if (k as usize) < LN_FACT_TABLE_LEN {
        ln_fact_table()[k as usize]
    } else {
        ln_gamma(k as f64 + 1.0)
    }
}

/// Log of the Poisson pmf `P(X = k)` for `X ~ Pois(lambda)`.
///
/// `lambda = 0` is the degenerate point mass at zero.
pub fn poisson_ln_pmf(lambda: f64, k: u64) -> f64 {
    assert!(lambda >= 0.0, "negative Poisson mean");
    if lambda == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    k as f64 * lambda.ln() - lambda - ln_factorial(k)
}

/// Poisson pmf `P(X = k)`.
pub fn poisson_pmf(lambda: f64, k: u64) -> f64 {
    poisson_ln_pmf(lambda, k).exp()
}

/// Poisson pmf over the inclusive range `lo..=hi`, computed stably for any
/// mean: the value at the (clamped) mode is evaluated in log space, then the
/// two-sided recurrence `p(k+1) = p(k)·λ/(k+1)` fills the rest. Values that
/// underflow far in the tails become `0.0`, which is the correct limit.
pub fn poisson_pmf_range(lambda: f64, lo: u64, hi: u64) -> Vec<f64> {
    let mut out = Vec::new();
    poisson_pmf_into(lambda, lo, hi, &mut out);
    out
}

/// Buffer-reusing form of [`poisson_pmf_range`]: clears `out` and fills it
/// with the pmf over `lo..=hi`, reallocating only when the window outgrows
/// the buffer's capacity. The arithmetic is identical to the allocating
/// form, so the two produce bit-identical values — the batched
/// expression-error kernel leans on both properties.
pub fn poisson_pmf_into(lambda: f64, lo: u64, hi: u64, out: &mut Vec<f64>) {
    assert!(lambda >= 0.0, "negative Poisson mean");
    assert!(lo <= hi, "empty pmf range");
    let len = (hi - lo + 1) as usize;
    out.clear();
    out.resize(len, 0.0);
    if lambda == 0.0 {
        if lo == 0 {
            out[0] = 1.0;
        }
        return;
    }
    let mode = (lambda.floor() as u64).clamp(lo, hi);
    let anchor = (mode - lo) as usize;
    out[anchor] = poisson_pmf(lambda, mode);
    // Walk down from the anchor: p(k-1) = p(k) · k / λ.
    for i in (0..anchor).rev() {
        let k = lo + i as u64 + 1; // we are computing index i = value k-1
        out[i] = out[i + 1] * k as f64 / lambda;
    }
    // Walk up from the anchor: p(k+1) = p(k) · λ / (k+1).
    for i in anchor..len - 1 {
        let k = lo + i as u64;
        out[i + 1] = out[i] * lambda / (k + 1) as f64;
    }
}

/// Closed-form mean absolute deviation of a Poisson variable,
/// `E|X − λ| = 2 λ^(⌊λ⌋+1) e^{-λ} / ⌊λ⌋!` (Crow, 1958). Used as a ground
/// truth in tests and as the irreducible-error floor of an ideal predictor.
pub fn poisson_mad(lambda: f64) -> f64 {
    assert!(lambda >= 0.0, "negative Poisson mean");
    if lambda == 0.0 {
        return 0.0;
    }
    let m = lambda.floor();
    (2.0f64.ln() + (m + 1.0) * lambda.ln() - lambda - ln_gamma(m + 2.0) + (m + 1.0).ln()).exp()
}

/// The window `[lo, hi]` outside which the `Pois(lambda)` pmf carries less
/// than ~1e-12 of probability mass. `pad` widens the window further (useful
/// when the quantity being integrated grows with `k`).
pub fn mass_window(lambda: f64, pad: u64) -> (u64, u64) {
    if lambda == 0.0 {
        return (0, pad);
    }
    let sd = lambda.sqrt();
    let lo = (lambda - 8.0 * sd - 8.0).max(0.0) as u64;
    let hi = (lambda + 8.0 * sd + 8.0).ceil() as u64 + pad;
    (lo.saturating_sub(pad), hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_factorial_matches_direct_product() {
        let mut f = 1.0f64;
        for k in 1..=20u64 {
            f *= k as f64;
            assert!(
                (ln_factorial(k) - f.ln()).abs() < 1e-9,
                "k={k}: {} vs {}",
                ln_factorial(k),
                f.ln()
            );
        }
    }

    #[test]
    fn ln_factorial_table_matches_ln_gamma_everywhere() {
        // The lookup table must agree with the Lanczos evaluation it
        // replaces at 1e-13 relative tolerance over the whole table range
        // (in fact it is built from ln_gamma, so the match is exact), and
        // the fallback must take over seamlessly at the boundary.
        for k in 0..1024u64 {
            let table = ln_factorial(k);
            let direct = ln_gamma(k as f64 + 1.0);
            let tol = 1e-13 * (1.0 + direct.abs());
            assert!(
                (table - direct).abs() <= tol,
                "k={k}: table {table} vs ln_gamma {direct}"
            );
        }
        for k in [1024u64, 1025, 5_000, 1_000_000] {
            assert_eq!(
                ln_factorial(k).to_bits(),
                ln_gamma(k as f64 + 1.0).to_bits(),
                "fallback must be the direct evaluation at k={k}"
            );
        }
    }

    #[test]
    fn pmf_into_reuses_capacity_and_matches_allocating_form() {
        let mut buf = Vec::new();
        poisson_pmf_into(40.0, 0, 120, &mut buf);
        assert_eq!(buf, poisson_pmf_range(40.0, 0, 120));
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        // A smaller window must reuse the allocation…
        poisson_pmf_into(3.0, 0, 30, &mut buf);
        assert_eq!(buf, poisson_pmf_range(3.0, 0, 30));
        assert_eq!(buf.capacity(), cap, "capacity must be reused");
        assert_eq!(buf.as_ptr(), ptr, "buffer must not be reallocated");
        // …including the degenerate λ = 0 window.
        poisson_pmf_into(0.0, 0, 3, &mut buf);
        assert_eq!(buf, vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn pmf_matches_direct_formula_small() {
        let lambda: f64 = 3.7;
        let mut fact = 1.0;
        for k in 0..15u64 {
            if k > 0 {
                fact *= k as f64;
            }
            let direct = (-lambda).exp() * lambda.powi(k as i32) / fact;
            assert!((poisson_pmf(lambda, k) - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_range_sums_to_one() {
        for &lambda in &[0.01, 0.5, 3.0, 40.0, 500.0, 5_000.0, 50_000.0] {
            let (lo, hi) = mass_window(lambda, 0);
            let total: f64 = poisson_pmf_range(lambda, lo, hi).iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "lambda={lambda}: total={total}");
        }
    }

    #[test]
    fn pmf_range_survives_extreme_means() {
        // e^{-5000} underflows, but the mode-anchored pmf must not.
        let (lo, hi) = mass_window(5_000.0, 0);
        let pmf = poisson_pmf_range(5_000.0, lo, hi);
        let max = pmf.iter().cloned().fold(0.0, f64::max);
        assert!(max > 1e-4, "mode mass lost: {max}");
    }

    #[test]
    fn pmf_range_degenerate_lambda_zero() {
        assert_eq!(poisson_pmf_range(0.0, 0, 3), vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(poisson_pmf_range(0.0, 1, 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn pmf_range_partial_windows_match_full() {
        let lambda = 12.3;
        let full = poisson_pmf_range(lambda, 0, 60);
        let part = poisson_pmf_range(lambda, 5, 20);
        for (i, v) in part.iter().enumerate() {
            assert!((v - full[i + 5]).abs() < 1e-14);
        }
    }

    #[test]
    fn mad_matches_series_sum() {
        for &lambda in &[0.3, 1.0, 2.5, 7.0, 31.4, 250.0] {
            let (lo, hi) = mass_window(lambda, 10);
            let series: f64 = poisson_pmf_range(lambda, lo, hi)
                .iter()
                .enumerate()
                .map(|(i, p)| ((lo + i as u64) as f64 - lambda).abs() * p)
                .sum();
            let closed = poisson_mad(lambda);
            assert!(
                (series - closed).abs() < 1e-8 * closed.max(1.0),
                "lambda={lambda}: series={series} closed={closed}"
            );
        }
    }

    #[test]
    fn mad_is_zero_at_zero_and_grows_like_sqrt() {
        assert_eq!(poisson_mad(0.0), 0.0);
        // For large λ, E|X−λ| → √(2λ/π).
        let lambda = 10_000.0;
        let expect = (2.0 * lambda / std::f64::consts::PI).sqrt();
        assert!((poisson_mad(lambda) - expect).abs() / expect < 0.01);
    }

    #[test]
    fn mass_window_contains_the_mean() {
        for &lambda in &[0.0, 1.0, 100.0, 1e6] {
            let (lo, hi) = mass_window(lambda, 0);
            assert!((lo as f64) <= lambda && lambda <= hi as f64);
        }
    }
}
