//! Numerically-stable Poisson machinery.
//!
//! The paper models the event count of every HGrid as
//! `λ_ij ~ Pois(α_ij)` (Sec. III-B) and its formulas multiply Poisson pmf
//! values whose means can reach the thousands (the whole of NYC in one slot
//! when `n = 1`). Naively starting recurrences from `e^{-λ}` underflows for
//! `λ ≳ 745`, silently zeroing every later term, so all pmf evaluation here
//! goes through [`poisson_pmf_into`], which anchors the recurrence at the
//! distribution's mode in log space and walks outward.
//!
//! The walk itself is the **stride-4 recurrence**: instead of the serial
//! chain `p(k+1) = p(k)·λ/(k+1)` (whose mul+div latency is loop-carried),
//! up to four entries on each side of the mode are seeded by the direct
//! log-space formula and then four independent lanes step outward with
//! `p(k±4) = p(k)·λ⁴∕∏(consecutive factors)`. Every entry is a pure
//! function of `(λ, clamped mode, k)` — not of the window bounds — so
//! partial windows that contain the mode match full windows bit for bit.
//! The four lanes run through [`crate::simd`]: AVX2 intrinsics where the
//! CPU has them, the bit-exact scalar emulation of the same lane
//! association everywhere else (`GRIDTUNER_SIMD=0` forces the latter).

use crate::simd::{F64x4, Lanes, ScalarLanes};

/// Natural log of the Gamma function (Lanczos approximation, g = 7, 9
/// coefficients; |relative error| < 1e-13 over the positive reals).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    if x < 0.5 {
        // Reflection formula keeps the small-argument branch accurate.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Entries in the precomputed `ln k!` table: every `k < 1024` is served
/// from memory, which removes the Lanczos [`ln_gamma`] evaluation from the
/// pmf mode-anchor recurrence for all realistic per-cell rates.
const LN_FACT_TABLE_LEN: usize = 1024;

/// The `ln k!` lookup table, built once on first use. Each entry is the
/// value [`ln_gamma`]`(k + 1)` would return, so table hits are
/// bit-identical to the direct evaluation. Stored as a fixed array, not
/// a `Vec`: the pmf anchor path (and its AVX2 gather) reads straight off
/// the static without the extra pointer hop through a heap allocation.
fn ln_fact_table() -> &'static [f64; LN_FACT_TABLE_LEN] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; LN_FACT_TABLE_LEN]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0; LN_FACT_TABLE_LEN];
        for (k, v) in t.iter_mut().enumerate() {
            *v = ln_gamma(k as f64 + 1.0);
        }
        t
    })
}

/// Natural log of `k!` for integer `k`. Served from a precomputed table
/// for `k < 1024` (bit-identical to the [`ln_gamma`] evaluation it
/// replaces), falling back to Lanczos for larger arguments.
pub fn ln_factorial(k: u64) -> f64 {
    if (k as usize) < LN_FACT_TABLE_LEN {
        ln_fact_table()[k as usize]
    } else {
        ln_gamma(k as f64 + 1.0)
    }
}

/// Log of the Poisson pmf `P(X = k)` for `X ~ Pois(lambda)`.
///
/// `lambda = 0` is the degenerate point mass at zero.
pub fn poisson_ln_pmf(lambda: f64, k: u64) -> f64 {
    assert!(lambda >= 0.0, "negative Poisson mean");
    if lambda == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    k as f64 * lambda.ln() - lambda - ln_factorial(k)
}

/// Poisson pmf `P(X = k)`.
pub fn poisson_pmf(lambda: f64, k: u64) -> f64 {
    poisson_ln_pmf(lambda, k).exp()
}

/// Poisson pmf over the inclusive range `lo..=hi`, computed stably for any
/// mean: up to four entries on each side of the (clamped) mode are seeded
/// in log space, then the stride-4 recurrence `p(k±4) = p(k)·λ⁴∕…` fills
/// the rest in four independent lanes. Values that underflow far in the
/// tails become `0.0`, which is the correct limit.
#[deprecated(note = "allocates a fresh Vec per call; use poisson_pmf_into with a reused buffer")]
pub fn poisson_pmf_range(lambda: f64, lo: u64, hi: u64) -> Vec<f64> {
    let mut out = Vec::new();
    poisson_pmf_into(lambda, lo, hi, &mut out);
    out
}

/// Buffer-reusing pmf window fill: clears `out` and fills it with the pmf
/// over `lo..=hi`, reallocating only when the window outgrows the
/// buffer's capacity — the batched expression-error kernel leans on that.
///
/// The fill is the stride-4 mode-anchored recurrence (see the module
/// docs), dispatched through [`crate::simd`]: the AVX2 instantiation and
/// the scalar emulation produce bit-identical values, and every entry is
/// a pure function of `(λ, clamped mode, k)`, so windows sharing the mode
/// agree bitwise wherever they overlap.
pub fn poisson_pmf_into(lambda: f64, lo: u64, hi: u64, out: &mut Vec<f64>) {
    assert!(lambda >= 0.0, "negative Poisson mean");
    assert!(lo <= hi, "empty pmf range");
    let len = (hi - lo + 1) as usize;
    out.clear();
    out.resize(len, 0.0);
    if lambda == 0.0 {
        if lo == 0 {
            out[0] = 1.0;
        }
        return;
    }
    let mode = (lambda.floor() as u64).clamp(lo, hi);
    let anchor = (mode - lo) as usize;
    #[cfg(target_arch = "x86_64")]
    if crate::simd::simd_enabled() {
        // Safety: simd_enabled() implies AVX2 was detected at runtime.
        unsafe { pmf_fill_avx2(lambda, lo, len, anchor, out) };
        return;
    }
    pmf_fill_scalar(lambda, lo, len, anchor, out);
}

fn pmf_fill_scalar(lambda: f64, lo: u64, len: usize, anchor: usize, out: &mut [f64]) {
    // Safety: the scalar emulation has no hardware precondition.
    unsafe { pmf_fill_body::<ScalarLanes>(lambda, lo, len, anchor, out) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn pmf_fill_avx2(lambda: f64, lo: u64, len: usize, anchor: usize, out: &mut [f64]) {
    pmf_fill_body::<crate::simd::Avx2Lanes>(lambda, lo, len, anchor, out)
}

/// One seed entry by the direct log-space formula. The expression is the
/// same association as [`poisson_ln_pmf`], so the anchor seed equals
/// [`poisson_pmf`]`(lambda, k)` bit for bit.
#[inline(always)]
fn seed1(lambda: f64, ln_lam: f64, k: u64) -> f64 {
    (k as f64 * ln_lam - lambda - ln_factorial(k)).exp()
}

/// Four consecutive seeds `k0..k0+4`: a vectorised `ln k!` table gather
/// plus lane-wise mul/sub — per lane exactly [`seed1`]'s expression. The
/// final `exp` is the scalar libm call in both backends (bit-identity
/// requires a single implementation, and AVX2 has no exp anyway).
#[inline(always)]
unsafe fn seed4<B: Lanes>(lambda: f64, ln_lam: f64, k0: u64) -> F64x4 {
    let kv = F64x4([k0 as f64, (k0 + 1) as f64, (k0 + 2) as f64, (k0 + 3) as f64]);
    let lnf = if k0 + 3 < LN_FACT_TABLE_LEN as u64 {
        let i = k0 as usize;
        B::gather(ln_fact_table(), [i, i + 1, i + 2, i + 3])
    } else {
        F64x4([
            ln_factorial(k0),
            ln_factorial(k0 + 1),
            ln_factorial(k0 + 2),
            ln_factorial(k0 + 3),
        ])
    };
    let ln_p = B::sub(B::sub(B::mul(kv, B::splat(ln_lam)), B::splat(lambda)), lnf);
    F64x4([
        ln_p.0[0].exp(),
        ln_p.0[1].exp(),
        ln_p.0[2].exp(),
        ln_p.0[3].exp(),
    ])
}

/// The stride-4 fill, written once over the [`Lanes`] backend. Seeds sit
/// at indices `anchor..anchor+4` and `anchor-4..anchor` (clipped); waves
/// then step four lanes at a time, `p(k+4) = (p(k)·λ⁴)∕((k+1)(k+2))((k+3)(k+4))`
/// upward and `p(k−4) = (p(k)·(k)(k−1)(k−2)(k−3))∕λ⁴` downward, with the
/// factor products associated `(a·b)·(c·d)`. Tails shorter than a wave
/// use the identical per-entry expression, so lane count never leaks into
/// the values. All `k` factors are exact integers in f64 (`k ≪ 2⁵³`).
#[inline(always)]
unsafe fn pmf_fill_body<B: Lanes>(
    lambda: f64,
    lo: u64,
    len: usize,
    anchor: usize,
    out: &mut [f64],
) {
    let ln_lam = lambda.ln();
    let lam2 = lambda * lambda;
    let lam4 = lam2 * lam2;
    let mode = lo + anchor as u64;

    // Seeds above the anchor (indices anchor..anchor+4, clipped to len).
    if anchor + 4 <= len {
        B::store(seed4::<B>(lambda, ln_lam, mode), &mut out[anchor..]);
    } else {
        for (i, o) in out[anchor..len].iter_mut().enumerate() {
            *o = seed1(lambda, ln_lam, lo + (anchor + i) as u64);
        }
    }
    // Seeds below the anchor (indices anchor-4..anchor, clipped to 0).
    if anchor >= 4 {
        B::store(seed4::<B>(lambda, ln_lam, mode - 4), &mut out[anchor - 4..]);
    } else {
        for (i, o) in out[..anchor].iter_mut().enumerate() {
            *o = seed1(lambda, ln_lam, lo + i as u64);
        }
    }

    // Upward waves: out[base+4..base+8] from out[base..base+4].
    let mut base = anchor;
    while base + 8 <= len {
        let k0 = lo + base as u64; // value at the lowest input lane
        let a = F64x4([
            (k0 + 1) as f64,
            (k0 + 2) as f64,
            (k0 + 3) as f64,
            (k0 + 4) as f64,
        ]);
        let b = F64x4([
            (k0 + 2) as f64,
            (k0 + 3) as f64,
            (k0 + 4) as f64,
            (k0 + 5) as f64,
        ]);
        let c = F64x4([
            (k0 + 3) as f64,
            (k0 + 4) as f64,
            (k0 + 5) as f64,
            (k0 + 6) as f64,
        ]);
        let d = F64x4([
            (k0 + 4) as f64,
            (k0 + 5) as f64,
            (k0 + 6) as f64,
            (k0 + 7) as f64,
        ]);
        let consec = B::mul(B::mul(a, b), B::mul(c, d));
        let p = B::load(&out[base..]);
        let next = B::div(B::mul(p, B::splat(lam4)), consec);
        B::store(next, &mut out[base + 4..]);
        base += 4;
    }
    // Upward tail (< 4 entries): the same per-entry expression.
    for i in (base + 4).min(len)..len {
        let km = lo + (i - 4) as u64; // value four below entry i
        let consec =
            (((km + 1) as f64) * ((km + 2) as f64)) * (((km + 3) as f64) * ((km + 4) as f64));
        out[i] = out[i - 4] * lam4 / consec;
    }

    // Downward waves: out[ds-4..ds] from out[ds..ds+4].
    let mut ds = anchor.saturating_sub(4);
    while ds >= 4 {
        let v0 = lo + (ds - 4) as u64; // value at the lowest output lane
        let a = F64x4([
            (v0 + 4) as f64,
            (v0 + 5) as f64,
            (v0 + 6) as f64,
            (v0 + 7) as f64,
        ]);
        let b = F64x4([
            (v0 + 3) as f64,
            (v0 + 4) as f64,
            (v0 + 5) as f64,
            (v0 + 6) as f64,
        ]);
        let c = F64x4([
            (v0 + 2) as f64,
            (v0 + 3) as f64,
            (v0 + 4) as f64,
            (v0 + 5) as f64,
        ]);
        let d = F64x4([
            (v0 + 1) as f64,
            (v0 + 2) as f64,
            (v0 + 3) as f64,
            (v0 + 4) as f64,
        ]);
        let prod = B::mul(B::mul(a, b), B::mul(c, d));
        let p = B::load(&out[ds..]);
        let prev = B::div(B::mul(p, prod), B::splat(lam4));
        B::store(prev, &mut out[ds - 4..]);
        ds -= 4;
    }
    // Downward tail (< 4 entries): the same per-entry expression.
    for i in (0..ds).rev() {
        let v = lo + i as u64;
        let prod = (((v + 4) as f64) * ((v + 3) as f64)) * (((v + 2) as f64) * ((v + 1) as f64));
        out[i] = out[i + 4] * prod / lam4;
    }
}

/// Closed-form mean absolute deviation of a Poisson variable,
/// `E|X − λ| = 2 λ^(⌊λ⌋+1) e^{-λ} / ⌊λ⌋!` (Crow, 1958). Used as a ground
/// truth in tests and as the irreducible-error floor of an ideal predictor.
pub fn poisson_mad(lambda: f64) -> f64 {
    assert!(lambda >= 0.0, "negative Poisson mean");
    if lambda == 0.0 {
        return 0.0;
    }
    let m = lambda.floor();
    (2.0f64.ln() + (m + 1.0) * lambda.ln() - lambda - ln_gamma(m + 2.0) + (m + 1.0).ln()).exp()
}

/// The window `[lo, hi]` outside which the `Pois(lambda)` pmf carries less
/// than ~1e-12 of probability mass. `pad` widens the window further (useful
/// when the quantity being integrated grows with `k`).
pub fn mass_window(lambda: f64, pad: u64) -> (u64, u64) {
    if lambda == 0.0 {
        return (0, pad);
    }
    let sd = lambda.sqrt();
    let lo = (lambda - 8.0 * sd - 8.0).max(0.0) as u64;
    let hi = (lambda + 8.0 * sd + 8.0).ceil() as u64 + pad;
    (lo.saturating_sub(pad), hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-local allocating wrapper (the public allocating form is
    /// deprecated; its one remaining in-tree caller is the pin below).
    fn pmf_range(lambda: f64, lo: u64, hi: u64) -> Vec<f64> {
        let mut out = Vec::new();
        poisson_pmf_into(lambda, lo, hi, &mut out);
        out
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_factorial_matches_direct_product() {
        let mut f = 1.0f64;
        for k in 1..=20u64 {
            f *= k as f64;
            assert!(
                (ln_factorial(k) - f.ln()).abs() < 1e-9,
                "k={k}: {} vs {}",
                ln_factorial(k),
                f.ln()
            );
        }
    }

    #[test]
    fn ln_factorial_table_matches_ln_gamma_everywhere() {
        // The lookup table must agree with the Lanczos evaluation it
        // replaces at 1e-13 relative tolerance over the whole table range
        // (in fact it is built from ln_gamma, so the match is exact), and
        // the fallback must take over seamlessly at the boundary.
        for k in 0..1024u64 {
            let table = ln_factorial(k);
            let direct = ln_gamma(k as f64 + 1.0);
            let tol = 1e-13 * (1.0 + direct.abs());
            assert!(
                (table - direct).abs() <= tol,
                "k={k}: table {table} vs ln_gamma {direct}"
            );
        }
        for k in [1024u64, 1025, 5_000, 1_000_000] {
            assert_eq!(
                ln_factorial(k).to_bits(),
                ln_gamma(k as f64 + 1.0).to_bits(),
                "fallback must be the direct evaluation at k={k}"
            );
        }
    }

    #[test]
    #[allow(deprecated)]
    fn pmf_into_reuses_capacity_and_matches_allocating_form() {
        let mut buf = Vec::new();
        poisson_pmf_into(40.0, 0, 120, &mut buf);
        assert_eq!(buf, poisson_pmf_range(40.0, 0, 120));
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        // A smaller window must reuse the allocation…
        poisson_pmf_into(3.0, 0, 30, &mut buf);
        assert_eq!(buf, poisson_pmf_range(3.0, 0, 30));
        assert_eq!(buf.capacity(), cap, "capacity must be reused");
        assert_eq!(buf.as_ptr(), ptr, "buffer must not be reallocated");
        // …including the degenerate λ = 0 window.
        poisson_pmf_into(0.0, 0, 3, &mut buf);
        assert_eq!(buf, vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn pmf_matches_direct_formula_small() {
        let lambda: f64 = 3.7;
        let mut fact = 1.0;
        for k in 0..15u64 {
            if k > 0 {
                fact *= k as f64;
            }
            let direct = (-lambda).exp() * lambda.powi(k as i32) / fact;
            assert!((poisson_pmf(lambda, k) - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_range_sums_to_one() {
        for &lambda in &[0.01, 0.5, 3.0, 40.0, 500.0, 5_000.0, 50_000.0] {
            let (lo, hi) = mass_window(lambda, 0);
            let total: f64 = pmf_range(lambda, lo, hi).iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "lambda={lambda}: total={total}");
        }
    }

    #[test]
    fn pmf_range_survives_extreme_means() {
        // e^{-5000} underflows, but the mode-anchored pmf must not.
        let (lo, hi) = mass_window(5_000.0, 0);
        let pmf = pmf_range(5_000.0, lo, hi);
        let max = pmf.iter().cloned().fold(0.0, f64::max);
        assert!(max > 1e-4, "mode mass lost: {max}");
    }

    #[test]
    fn pmf_range_degenerate_lambda_zero() {
        assert_eq!(pmf_range(0.0, 0, 3), vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(pmf_range(0.0, 1, 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn pmf_range_partial_windows_match_full() {
        // Every entry is a pure function of (λ, clamped mode, k), so two
        // windows that both contain the mode agree *bitwise* on their
        // overlap — not merely to tolerance.
        let lambda = 12.3;
        let full = pmf_range(lambda, 0, 60);
        let part = pmf_range(lambda, 5, 20);
        for (i, v) in part.iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                full[i + 5].to_bits(),
                "k={}: {} vs {}",
                i + 5,
                v,
                full[i + 5]
            );
        }
    }

    #[test]
    fn stride4_recurrence_matches_serial_walk() {
        // The lane-parallel fill must agree with the classic serial
        // mode-anchored walk p(k+1) = p(k)·λ/(k+1) to tight relative
        // tolerance wherever the mass is representable.
        for &lambda in &[0.7, 3.0, 12.3, 40.0, 123.4, 5_000.0] {
            let (lo, hi) = mass_window(lambda, 0);
            let got = pmf_range(lambda, lo, hi);
            let len = (hi - lo + 1) as usize;
            let mode = (lambda.floor() as u64).clamp(lo, hi);
            let anchor = (mode - lo) as usize;
            let mut serial = vec![0.0f64; len];
            serial[anchor] = poisson_pmf(lambda, mode);
            for i in (0..anchor).rev() {
                serial[i] = serial[i + 1] * (lo + i as u64 + 1) as f64 / lambda;
            }
            for i in anchor..len - 1 {
                serial[i + 1] = serial[i] * lambda / (lo + i as u64 + 1) as f64;
            }
            for (i, (&g, &s)) in got.iter().zip(serial.iter()).enumerate() {
                if s > 1e-300 {
                    assert!(
                        ((g - s) / s).abs() < 1e-10,
                        "lambda={lambda} i={i}: stride4 {g} vs serial {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn pmf_backends_are_bitwise_identical() {
        // The AVX2 instantiation and the scalar emulation are the same
        // canonical association, so their outputs match bit for bit.
        // Without AVX2 both passes run the scalar body and the assert is
        // trivially true — the real check happens on AVX2 hosts.
        let prev = crate::simd::simd_enabled();
        for &lambda in &[0.0, 0.3, 7.7, 40.0, 987.6, 50_000.0] {
            let (lo, hi) = mass_window(lambda, 3);
            crate::simd::set_simd_enabled(false);
            let scalar = pmf_range(lambda, lo, hi);
            crate::simd::set_simd_enabled(true);
            let vector = pmf_range(lambda, lo, hi);
            crate::simd::set_simd_enabled(prev);
            for (i, (s, v)) in scalar.iter().zip(vector.iter()).enumerate() {
                assert_eq!(
                    s.to_bits(),
                    v.to_bits(),
                    "lambda={lambda} i={i}: scalar {s} vs vector {v}"
                );
            }
        }
    }

    #[test]
    fn mad_matches_series_sum() {
        for &lambda in &[0.3, 1.0, 2.5, 7.0, 31.4, 250.0] {
            let (lo, hi) = mass_window(lambda, 10);
            let series: f64 = pmf_range(lambda, lo, hi)
                .iter()
                .enumerate()
                .map(|(i, p)| ((lo + i as u64) as f64 - lambda).abs() * p)
                .sum();
            let closed = poisson_mad(lambda);
            assert!(
                (series - closed).abs() < 1e-8 * closed.max(1.0),
                "lambda={lambda}: series={series} closed={closed}"
            );
        }
    }

    #[test]
    fn mad_is_zero_at_zero_and_grows_like_sqrt() {
        assert_eq!(poisson_mad(0.0), 0.0);
        // For large λ, E|X−λ| → √(2λ/π).
        let lambda = 10_000.0;
        let expect = (2.0 * lambda / std::f64::consts::PI).sqrt();
        assert!((poisson_mad(lambda) - expect).abs() / expect < 0.01);
    }

    #[test]
    fn mass_window_contains_the_mean() {
        for &lambda in &[0.0, 1.0, 100.0, 1e6] {
            let (lo, hi) = mass_window(lambda, 0);
            assert!((lo as f64) <= lambda && lambda <= hi as f64);
        }
    }
}
