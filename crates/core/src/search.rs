//! Search over the MGrid side for the minimum of the real-error upper
//! bound: Brute-force, Ternary Search (Algorithm 4) and the Iterative
//! Method (Algorithm 5).
//!
//! All searchers operate on the MGrid **side** `s = √n` (the paper's
//! searchable axis: `n` is kept a perfect square) through an
//! [`ErrorOracle`]; wrap an oracle in [`MemoOracle`] to deduplicate the
//! expensive `UpperBound` evaluations (each one retrains the prediction
//! model) and to count unique evaluations — the "cost" column of Table IV.

use crate::error::CoreError;
use gridtuner_obs as obs;
use std::collections::HashMap;

/// Anything that can produce the upper-bound error `e(s)` for an MGrid
/// side `s` (Algorithm 3's output).
pub trait ErrorOracle {
    /// Evaluates `e(s)`.
    fn eval(&mut self, side: u32) -> f64;
}

impl<F: FnMut(u32) -> f64> ErrorOracle for F {
    fn eval(&mut self, side: u32) -> f64 {
        self(side)
    }
}

/// A thread-safe error oracle: evaluation through `&self`, so a sweep can
/// probe many sides concurrently. Implemented by [`UpperBoundOracle`] when
/// its model leg is a `Fn + Sync` closure, and by any such closure
/// directly.
///
/// [`UpperBoundOracle`]: crate::upper_bound::UpperBoundOracle
pub trait SyncErrorOracle: Sync {
    /// Evaluates `e(s)`.
    fn eval_sync(&self, side: u32) -> f64;
}

impl<F: Fn(u32) -> f64 + Sync> SyncErrorOracle for F {
    fn eval_sync(&self, side: u32) -> f64 {
        self(side)
    }
}

/// Memoizing wrapper: caches evaluations and counts unique oracle calls.
pub struct MemoOracle<O> {
    inner: O,
    cache: HashMap<u32, f64>,
}

impl<O: ErrorOracle> MemoOracle<O> {
    /// Wraps an oracle.
    pub fn new(inner: O) -> Self {
        MemoOracle {
            inner,
            cache: HashMap::new(),
        }
    }

    /// Number of unique (non-cached) evaluations performed so far. A thin
    /// shim over the cache size; the global `search.unique_evals` registry
    /// counter tracks the same quantity across all searches in a run.
    pub fn unique_evals(&self) -> usize {
        self.cache.len()
    }

    /// The cached probes, sorted by side.
    pub fn probes(&self) -> Vec<(u32, f64)> {
        let mut v: Vec<_> = self.cache.iter().map(|(&s, &e)| (s, e)).collect();
        v.sort_by_key(|&(s, _)| s);
        v
    }

    /// Consumes the wrapper, returning the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: ErrorOracle> ErrorOracle for MemoOracle<O> {
    fn eval(&mut self, side: u32) -> f64 {
        if let Some(&e) = self.cache.get(&side) {
            return e;
        }
        obs::counter!("search.unique_evals").inc();
        // "search.probe" (one per unique memoised probe) deliberately
        // differs from the inner oracle's "probe" span so the two layers
        // stay distinguishable in span stats.
        let _span = obs::span!("search.probe", side = side);
        let e = self.inner.eval(side);
        self.cache.insert(side, e);
        e
    }
}

/// Result of a grid-size search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The selected MGrid side `s` (so `n = s²`).
    pub side: u32,
    /// `e(s)` at the selected side.
    pub error: f64,
    /// Unique oracle evaluations spent.
    pub evals: usize,
    /// Every probed `(side, e(side))`, sorted by side.
    pub probes: Vec<(u32, f64)>,
}

/// Fallible memoising probe backing the `try_*` searchers: the same
/// span/counter behaviour as [`MemoOracle`] (one `search.probe` span and
/// one `search.unique_evals` increment per unique side), over a `Result`
/// probe. The infallible searchers delegate here with an `Ok`-wrapping
/// probe, so both paths share one implementation — and so agree bit for
/// bit.
struct TryMemo<F> {
    probe: F,
    cache: HashMap<u32, f64>,
}

impl<F: FnMut(u32) -> Result<f64, CoreError>> TryMemo<F> {
    fn new(probe: F) -> Self {
        TryMemo {
            probe,
            cache: HashMap::new(),
        }
    }

    fn eval(&mut self, side: u32) -> Result<f64, CoreError> {
        if let Some(&e) = self.cache.get(&side) {
            return Ok(e);
        }
        obs::counter!("search.unique_evals").inc();
        // "search.probe" (one per unique memoised probe) deliberately
        // differs from the inner oracle's "probe" span so the two layers
        // stay distinguishable in span stats.
        let _span = obs::span!("search.probe", side = side);
        let e = (self.probe)(side)?;
        self.cache.insert(side, e);
        Ok(e)
    }

    fn outcome(&self, side: u32, error: f64) -> SearchOutcome {
        let mut probes: Vec<(u32, f64)> = self.cache.iter().map(|(&s, &e)| (s, e)).collect();
        probes.sort_by_key(|&(s, _)| s);
        SearchOutcome {
            side,
            error,
            evals: self.cache.len(),
            probes,
        }
    }
}

fn check_range(lo: u32, hi: u32) -> Result<(), CoreError> {
    if lo >= 1 && lo <= hi {
        Ok(())
    } else {
        Err(CoreError::InvalidSideRange { lo, hi })
    }
}

/// Exhaustive search over `lo..=hi`: the paper's Brute-force baseline,
/// `O(√N)` oracle calls, always optimal. Ties break toward the **smaller**
/// side (the update is strict `<`), so on plateaus the result is the
/// left-most minimiser — the canonical tie rule every other searcher is
/// measured against.
pub fn brute_force<O: ErrorOracle>(mut oracle: O, lo: u32, hi: u32) -> SearchOutcome {
    assert!(lo >= 1 && lo <= hi, "invalid side range [{lo}, {hi}]");
    match try_brute_force(|s| Ok(oracle.eval(s)), lo, hi) {
        Ok(out) => out,
        Err(e) => unreachable!("infallible probe failed: {e}"),
    }
}

/// Fallible [`brute_force`]: a probe error aborts the search and
/// propagates; an invalid range is a typed error instead of a panic.
pub fn try_brute_force(
    probe: impl FnMut(u32) -> Result<f64, CoreError>,
    lo: u32,
    hi: u32,
) -> Result<SearchOutcome, CoreError> {
    check_range(lo, hi)?;
    let _span = obs::span!("search.brute_force", lo = lo, hi = hi);
    let mut memo = TryMemo::new(probe);
    let mut best = (lo, f64::INFINITY);
    for s in lo..=hi {
        let e = memo.eval(s)?;
        if e < best.1 {
            best = (s, e);
        }
    }
    Ok(memo.outcome(best.0, best.1))
}

/// Data-parallel Brute-force over `lo..=hi`: probes every side across the
/// worker pool (`GRIDTUNER_THREADS` sized, see [`gridtuner_par`]), then
/// reduces deterministically in side order — the outcome is identical to
/// [`brute_force`] on the same oracle, including tie-breaking toward the
/// smaller side.
pub fn brute_force_parallel<O: SyncErrorOracle + ?Sized>(
    oracle: &O,
    lo: u32,
    hi: u32,
) -> SearchOutcome {
    assert!(lo >= 1 && lo <= hi, "invalid side range [{lo}, {hi}]");
    match try_brute_force_parallel(&|s| Ok(oracle.eval_sync(s)), lo, hi) {
        Ok(out) => out,
        Err(e) => unreachable!("infallible probe failed: {e}"),
    }
}

/// Fallible [`brute_force_parallel`]: every side is still probed across
/// the pool; if any probe failed, the error of the **lowest** failing side
/// propagates (deterministic regardless of worker count).
pub fn try_brute_force_parallel(
    probe: &(impl Fn(u32) -> Result<f64, CoreError> + Sync),
    lo: u32,
    hi: u32,
) -> Result<SearchOutcome, CoreError> {
    check_range(lo, hi)?;
    let _span = obs::span!("search.brute_force_parallel", lo = lo, hi = hi);
    let sides: Vec<u32> = (lo..=hi).collect();
    let errors = gridtuner_par::par_map(&sides, |&s| probe(s));
    obs::counter!("search.unique_evals").add(sides.len() as u64);
    let mut probes: Vec<(u32, f64)> = Vec::with_capacity(sides.len());
    for (s, e) in sides.into_iter().zip(errors) {
        probes.push((s, e?));
    }
    let mut best = (lo, f64::INFINITY);
    for &(s, e) in &probes {
        if e < best.1 {
            best = (s, e);
        }
    }
    Ok(SearchOutcome {
        side: best.0,
        error: best.1,
        evals: probes.len(),
        probes,
    })
}

/// Algorithm 4: Ternary Search over `lo..=hi`. Each round probes the two
/// third-points `m_l < m_r` and discards a third of the interval;
/// `O(log √N)` oracle calls. Finds the optimum whenever `e(s)` is
/// unimodal; on non-ideal curves it still returns a good local answer
/// (the paper's Table IV quantifies how often).
///
/// Plateaus and ties: when the two probes tie (`e(m_l) = e(m_r)`) the
/// right part of the interval is discarded, so the search drifts left. On
/// curves whose only flat region is the **minimum plateau** this still
/// returns a true minimiser (not necessarily the left-most — brute force's
/// tie rule). A flat **shoulder** away from the minimum, however, can make
/// a tie discard the interval that holds the real optimum — the testkit
/// pins a concrete example (`ternary_can_be_misled_by_shoulder_plateaus`).
///
/// ```
/// use gridtuner_core::search::ternary_search;
/// // A U-shaped error curve with its minimum at side 20.
/// let out = ternary_search(|s: u32| (s as f64 - 20.0).powi(2), 1, 76);
/// assert_eq!(out.side, 20);
/// assert!(out.evals < 20); // logarithmic, vs 76 for brute force
/// ```
pub fn ternary_search<O: ErrorOracle>(mut oracle: O, lo: u32, hi: u32) -> SearchOutcome {
    assert!(lo >= 1 && lo <= hi, "invalid side range [{lo}, {hi}]");
    match try_ternary_search(|s| Ok(oracle.eval(s)), lo, hi) {
        Ok(out) => out,
        Err(e) => unreachable!("infallible probe failed: {e}"),
    }
}

/// Fallible [`ternary_search`]: a probe error aborts the search and
/// propagates; an invalid range is a typed error instead of a panic.
pub fn try_ternary_search(
    probe: impl FnMut(u32) -> Result<f64, CoreError>,
    lo: u32,
    hi: u32,
) -> Result<SearchOutcome, CoreError> {
    check_range(lo, hi)?;
    let _span = obs::span!("search.ternary", lo = lo, hi = hi);
    let mut memo = TryMemo::new(probe);
    let (mut l, mut r) = (lo, hi);
    // Bitwise probe ties observed; each one discarded the right interval
    // and may have been a misleading shoulder plateau (see above).
    let mut plateau_ties = 0u64;
    while r - l > 1 {
        // Third-points, kept strictly inside (l, r) and distinct.
        let mut ml = l + (r - l) / 3;
        let mut mr = r - (r - l) / 3;
        if ml == l {
            ml += 1;
        }
        if mr >= r {
            mr = r - 1;
        }
        if ml >= mr {
            // Interval of width 2: probe the midpoint directly.
            ml = l + 1;
            mr = ml;
        }
        if ml == mr {
            // Single midpoint: shrink toward the better side.
            let em = memo.eval(ml)?;
            let el = memo.eval(l)?;
            let er = memo.eval(r)?;
            if em <= el && em <= er {
                l = ml;
                r = ml;
            } else if el <= er {
                r = ml;
            } else {
                l = ml;
            }
            break;
        }
        let (eml, emr) = (memo.eval(ml)?, memo.eval(mr)?);
        if eml == emr {
            plateau_ties += 1;
        }
        if eml > emr {
            l = ml;
        } else {
            r = mr;
        }
    }
    let (el, er) = (memo.eval(l)?, memo.eval(r)?);
    let (side, error) = if el > er { (r, er) } else { (l, el) };
    let outcome = memo.outcome(side, error);
    // Divergence diagnostics: a tie means a flat stretch steered the
    // search; a probe strictly below the returned error proves the result
    // is suboptimal. Both are anomalies the run report should surface.
    if plateau_ties > 0 {
        obs::warn_event!(
            "ternary.plateau_tie",
            ties = plateau_ties,
            side = side,
            error = error,
        );
    }
    let mut best_probe: Option<(u32, f64)> = None;
    for &(s, e) in &outcome.probes {
        if e < best_probe.map_or(f64::INFINITY, |(_, be)| be) {
            best_probe = Some((s, e));
        }
    }
    if let Some((better_side, better_error)) = best_probe {
        if better_error < error {
            obs::warn_event!(
                "ternary.suboptimal",
                side = side,
                error = error,
                better_side = better_side,
                better_error = better_error,
            );
        }
    }
    Ok(outcome)
}

/// Algorithm 5: the Iterative Method. Starts from `init` (the paper uses
/// the literature's default 16 ≈ 2 km MGrids) and hill-descends: probe
/// offsets `±i` for `i = bound..1`; move to the first improvement, repeat;
/// stop when no offset within `bound` improves.
///
/// (The paper's pseudocode line 13 reads `if e(p) < e(p−i)` which would
/// move *toward* a worse point; we implement the evident intent,
/// `e(p−i) < e(p)`.)
///
/// Plateaus and ties: moves require **strict** improvement, so the method
/// never walks along a flat stretch — on a curve that is flat around
/// `init` it simply returns `init` (clamped). On strictly unimodal curves
/// any `bound ≥ 1` reaches the optimum; with a minimum plateau it stops at
/// the first plateau point it touches.
pub fn iterative_method<O: ErrorOracle>(
    mut oracle: O,
    lo: u32,
    hi: u32,
    init: u32,
    bound: u32,
) -> SearchOutcome {
    assert!(lo >= 1 && lo <= hi, "invalid side range [{lo}, {hi}]");
    assert!(bound >= 1, "bound must be at least 1");
    match try_iterative_method(|s| Ok(oracle.eval(s)), lo, hi, init, bound) {
        Ok(out) => out,
        Err(e) => unreachable!("infallible probe failed: {e}"),
    }
}

/// Fallible [`iterative_method`]: a probe error aborts the search and
/// propagates; invalid ranges/bounds are typed errors instead of panics.
pub fn try_iterative_method(
    probe: impl FnMut(u32) -> Result<f64, CoreError>,
    lo: u32,
    hi: u32,
    init: u32,
    bound: u32,
) -> Result<SearchOutcome, CoreError> {
    check_range(lo, hi)?;
    if bound < 1 {
        return Err(CoreError::InvalidSearchBound);
    }
    let _span = obs::span!("search.iterative", lo = lo, hi = hi, init = init);
    let mut memo = TryMemo::new(probe);
    let mut p = init.clamp(lo, hi);
    loop {
        let ep = memo.eval(p)?;
        let mut moved = false;
        for i in (1..=bound).rev() {
            if p + i <= hi && memo.eval(p + i)? < ep {
                p += i;
                moved = true;
                break;
            }
            if p >= lo + i && memo.eval(p - i)? < ep {
                p -= i;
                moved = true;
                break;
            }
        }
        if !moved {
            break;
        }
    }
    let error = memo.eval(p)?;
    Ok(memo.outcome(p, error))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    /// A convex "model + expression" toy curve with its minimum at `opt`.
    fn convex(opt: f64) -> impl FnMut(u32) -> f64 {
        move |s: u32| {
            let s = s as f64;
            s * 2.0 + opt * opt * 2.0 / s // derivative zero at s = opt
        }
    }

    #[test]
    fn brute_force_finds_global_optimum() {
        let out = brute_force(convex(20.0), 1, 76);
        assert_eq!(out.side, 20);
        assert_eq!(out.evals, 76);
        assert_eq!(out.probes.len(), 76);
    }

    #[test]
    fn ternary_matches_brute_on_unimodal_curves() {
        for opt in [2.0, 5.0, 13.0, 16.0, 23.0, 50.0, 75.0] {
            let want = brute_force(convex(opt), 1, 76).side;
            let got = ternary_search(convex(opt), 1, 76);
            assert_eq!(got.side, want, "opt={opt}");
            assert!(
                got.evals < 20,
                "ternary used {} evals (should be O(log))",
                got.evals
            );
        }
    }

    #[test]
    fn ternary_handles_tiny_ranges() {
        assert_eq!(ternary_search(convex(5.0), 4, 4).side, 4);
        assert_eq!(ternary_search(convex(5.0), 4, 5).side, 5);
        assert_eq!(ternary_search(convex(5.0), 4, 6).side, 5);
        assert_eq!(ternary_search(convex(1.0), 3, 9).side, 3);
        assert_eq!(ternary_search(convex(100.0), 3, 9).side, 9);
    }

    #[test]
    fn iterative_descends_to_the_optimum() {
        for opt in [10.0, 16.0, 23.0] {
            let out = iterative_method(convex(opt), 1, 76, 16, 4);
            assert_eq!(out.side, opt as u32, "opt={opt}");
        }
    }

    #[test]
    fn iterative_respects_range_clamping() {
        // Init outside the range must be clamped, not panic.
        let out = iterative_method(convex(5.0), 2, 10, 50, 4);
        assert_eq!(out.side, 5);
        let out = iterative_method(convex(1.0), 2, 10, 1, 4);
        assert_eq!(out.side, 2);
    }

    #[test]
    fn iterative_with_small_bound_can_be_trapped() {
        // A curve with a local minimum at 10 separated from the global
        // minimum at 30 by a bump wider than the bound.
        let trap = |s: u32| -> f64 {
            let s = s as f64;
            // W-shaped: minima at 10 and 22, the latter deeper.
            let a = (s - 10.0).abs();
            let b = (s - 22.0).abs() - 5.0;
            a.min(b)
        };
        let stuck = iterative_method(trap, 1, 40, 10, 3);
        assert_eq!(stuck.side, 10, "small bound should get trapped");
        let escaped = iterative_method(trap, 1, 40, 10, 15);
        assert_eq!(escaped.side, 22, "large bound should escape");
        assert!(escaped.evals >= stuck.evals);
    }

    #[test]
    fn memoization_deduplicates_oracle_calls() {
        let count = Rc::new(Cell::new(0usize));
        let c = Rc::clone(&count);
        let oracle = move |s: u32| {
            c.set(c.get() + 1);
            (s as f64 - 7.0).powi(2)
        };
        let mut memo = MemoOracle::new(oracle);
        for _ in 0..5 {
            memo.eval(7);
            memo.eval(8);
        }
        assert_eq!(count.get(), 2);
        assert_eq!(memo.unique_evals(), 2);
        assert_eq!(memo.probes(), vec![(7, 0.0), (8, 1.0)]);
    }

    #[test]
    fn ternary_uses_logarithmically_many_evals() {
        let out = ternary_search(convex(300.0), 1, 1000);
        assert!(out.evals <= 40, "evals = {}", out.evals);
        assert_eq!(out.side, 300);
    }

    #[test]
    fn searchers_report_probe_trails() {
        let out = iterative_method(convex(20.0), 1, 76, 16, 4);
        assert!(out.probes.iter().any(|&(s, _)| s == out.side));
        assert!(out.probes.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(out.evals, out.probes.len());
    }

    #[test]
    #[should_panic(expected = "invalid side range")]
    fn empty_range_rejected() {
        brute_force(convex(5.0), 10, 3);
    }

    #[test]
    fn parallel_brute_force_matches_sequential_exactly() {
        for opt in [2.0, 20.0, 76.0] {
            let seq = brute_force(convex(opt), 1, 76);
            let par = brute_force_parallel(&|s: u32| convex(opt)(s), 1, 76);
            assert_eq!(par.side, seq.side, "opt={opt}");
            assert_eq!(par.error.to_bits(), seq.error.to_bits(), "opt={opt}");
            assert_eq!(par.probes, seq.probes, "opt={opt}");
            assert_eq!(par.evals, seq.evals);
        }
    }

    #[test]
    fn try_searchers_match_infallible_and_propagate_errors() {
        use crate::error::CoreError;
        let mut curve = convex(20.0);
        let ok = |s: u32| -> Result<f64, CoreError> { Ok(convex(20.0)(s)) };
        let want = brute_force(&mut curve, 1, 76);
        let got = try_brute_force(ok, 1, 76).unwrap();
        assert_eq!(got, want);
        let want = ternary_search(&mut curve, 1, 76);
        let got = try_ternary_search(ok, 1, 76).unwrap();
        assert_eq!(got, want);
        let want = iterative_method(&mut curve, 1, 76, 16, 4);
        let got = try_iterative_method(ok, 1, 76, 16, 4).unwrap();
        assert_eq!(got, want);
        // A failing probe aborts the search with the probe's error.
        let failing = |s: u32| -> Result<f64, CoreError> {
            if s == 10 {
                Err(CoreError::Model {
                    side: s,
                    message: "boom".into(),
                })
            } else {
                Ok(convex(20.0)(s))
            }
        };
        assert!(matches!(
            try_brute_force(failing, 1, 76),
            Err(CoreError::Model { side: 10, .. })
        ));
        // An invalid range is a typed error, not a panic.
        assert!(matches!(
            try_brute_force(ok, 10, 3),
            Err(CoreError::InvalidSideRange { lo: 10, hi: 3 })
        ));
        assert!(matches!(
            try_iterative_method(ok, 1, 76, 16, 0),
            Err(CoreError::InvalidSearchBound)
        ));
        // The parallel variant surfaces the lowest failing side.
        let failing_sync = |s: u32| -> Result<f64, CoreError> {
            if s.is_multiple_of(7) {
                Err(CoreError::Model {
                    side: s,
                    message: "boom".into(),
                })
            } else {
                Ok(s as f64)
            }
        };
        assert!(matches!(
            try_brute_force_parallel(&failing_sync, 1, 76),
            Err(CoreError::Model { side: 7, .. })
        ));
    }

    #[test]
    fn parallel_brute_force_breaks_ties_low_like_sequential() {
        // A flat curve: every side ties; both variants must pick `lo`.
        let seq = brute_force(|_s: u32| 1.0, 3, 30);
        let par = brute_force_parallel(&|_s: u32| 1.0, 3, 30);
        assert_eq!(seq.side, 3);
        assert_eq!(par.side, 3);
    }
}
