//! Empirical estimators of the three errors (Definitions 3–5).
//!
//! Given, for each evaluation slot, the model's MGrid prediction `λ̂` and
//! the actual HGrid counts `λ`, the estimators average over slots:
//!
//! * **real error** — `Σ_ij |λ̂_i/m − λ_ij|` (prediction spread to HGrids
//!   vs truth);
//! * **model error** — `Σ_i |λ̂_i − λ_i|` (MGrid-level bias; by Eq. 20 this
//!   equals `Σ_ij E_m(i,j)` and `≈ n·MAE(f)`);
//! * **expression error** — `Σ_ij |λ_i/m − λ_ij|` (truth spread uniformly
//!   vs truth).
//!
//! Because `|λ̂_i/m − λ_ij| ≤ |λ̂_i/m − λ_i/m| + |λ_i/m − λ_ij|` holds
//! pointwise, the empirical real error never exceeds the empirical
//! model + expression errors — the sample-level face of Theorem II.1.

use gridtuner_spatial::{CountMatrix, Partition, SpatialError};

/// One evaluation sample: the model's MGrid prediction and the actual HGrid
/// counts for the same slot.
#[derive(Debug, Clone)]
pub struct ErrorSample {
    /// Predicted counts on the partition's MGrid lattice.
    pub predicted_mgrid: CountMatrix,
    /// Actual counts on the partition's HGrid lattice.
    pub actual_hgrid: CountMatrix,
}

/// The three summed errors, averaged over evaluation samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorReport {
    /// Mean `Σ_ij |λ̂_ij − λ_ij|` — Definition 3 summed over HGrids.
    pub real: f64,
    /// Mean `Σ_i |λ̂_i − λ_i|` — Definition 4 summed (Eq. 20).
    pub model: f64,
    /// Mean `Σ_ij |λ̄_ij − λ_ij|` — Definition 5 summed.
    pub expression: f64,
}

impl ErrorReport {
    /// Theorem II.1's upper bound `E_u = E_m + E_e`.
    pub fn upper_bound(&self) -> f64 {
        self.model + self.expression
    }
}

/// Computes the three errors for a partition from evaluation samples.
///
/// Errors if any sample's matrices are not on the partition's lattices, or
/// if `samples` is empty.
pub fn evaluate_errors(
    samples: &[ErrorSample],
    partition: &Partition,
) -> Result<ErrorReport, SpatialError> {
    if samples.is_empty() {
        return Err(SpatialError::ShapeMismatch {
            expected: "at least one sample".into(),
            got: "0 samples".into(),
        });
    }
    let mut real = 0.0;
    let mut model = 0.0;
    let mut expression = 0.0;
    for s in samples {
        let actual_mgrid = s.actual_hgrid.to_mgrid(partition)?;
        let pred_hgrid = s.predicted_mgrid.to_hgrid(partition)?;
        let spread_truth = actual_mgrid.to_hgrid(partition)?;
        real += pred_hgrid.l1_distance(&s.actual_hgrid)?;
        model += s.predicted_mgrid.l1_distance(&actual_mgrid)?;
        expression += spread_truth.l1_distance(&s.actual_hgrid)?;
    }
    let k = samples.len() as f64;
    let report = ErrorReport {
        real: real / k,
        model: model / k,
        expression: expression / k,
    };
    #[cfg(feature = "check-invariants")]
    assert!(
        report.real <= report.upper_bound() + 1e-9 * (1.0 + report.upper_bound()),
        "Theorem II.1 violated: {report:?}"
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn sample_from(pred: Vec<f64>, actual: Vec<f64>, p: &Partition) -> ErrorSample {
        ErrorSample {
            predicted_mgrid: CountMatrix::from_vec(p.mgrid_spec().side(), pred).unwrap(),
            actual_hgrid: CountMatrix::from_vec(p.hgrid_spec().side(), actual).unwrap(),
        }
    }

    #[test]
    fn example_one_from_the_paper() {
        // Figure 1's setup: four MGrids, each split 2×2. Predicted MGrid
        // counts 8,2,4,4; actual MGrid counts 9,1,4,5 → model error 3.
        // (The figure's exact per-HGrid values are not fully recoverable
        // from the text, so we use a consistent reconstruction; the point —
        // the real error on small grids strictly exceeds the MGrid model
        // error — carries over.)
        let p = Partition::new(2, 2);
        let actual = vec![
            3.0, 2.0, 0.0, 1.0, //
            3.0, 1.0, 0.0, 0.0, //
            1.0, 1.0, 2.0, 1.0, //
            1.0, 1.0, 1.0, 1.0,
        ];
        let pred = vec![8.0, 2.0, 4.0, 4.0];
        let s = sample_from(pred, actual, &p);
        let r = evaluate_errors(&[s], &p).unwrap();
        assert!((r.model - 3.0).abs() < 1e-12, "model = {}", r.model);
        assert!((r.real - 6.0).abs() < 1e-12, "real = {}", r.real);
        assert!(r.real > r.model, "real error must exceed model error here");
        assert!(r.real <= r.upper_bound() + 1e-12);
    }

    #[test]
    fn perfect_uniform_prediction_has_zero_errors() {
        let p = Partition::new(2, 2);
        // Uniform actual field: 1 event per HGrid → MGrid counts 4 each.
        let actual = vec![1.0; 16];
        let pred = vec![4.0; 4];
        let r = evaluate_errors(&[sample_from(pred, actual, &p)], &p).unwrap();
        assert_eq!(r.real, 0.0);
        assert_eq!(r.model, 0.0);
        assert_eq!(r.expression, 0.0);
    }

    #[test]
    fn expression_error_isolated_when_model_is_perfect() {
        let p = Partition::new(1, 2);
        // All mass in one HGrid; the model predicts the MGrid total exactly.
        let actual = vec![4.0, 0.0, 0.0, 0.0];
        let pred = vec![4.0];
        let r = evaluate_errors(&[sample_from(pred, actual, &p)], &p).unwrap();
        assert_eq!(r.model, 0.0);
        // Spread 1 each: |1-4| + 3·|1-0| = 6.
        assert!((r.expression - 6.0).abs() < 1e-12);
        assert!((r.real - 6.0).abs() < 1e-12);
    }

    #[test]
    fn theorem_ii1_bound_holds_on_random_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let p = Partition::new(3, 3);
        for _ in 0..50 {
            let pred: Vec<f64> = (0..9).map(|_| rng.gen_range(0.0..20.0)).collect();
            let actual: Vec<f64> = (0..81).map(|_| rng.gen_range(0.0..4.0)).collect();
            let r = evaluate_errors(&[sample_from(pred, actual, &p)], &p).unwrap();
            assert!(
                r.real <= r.upper_bound() + 1e-9,
                "Theorem II.1 violated: {r:?}"
            );
            // And the slack is at most 2·min(E_e, E_m) (the paper's second
            // inequality).
            assert!(
                r.upper_bound() - r.real <= 2.0 * r.model.min(r.expression) + 1e-9,
                "slack bound violated: {r:?}"
            );
        }
    }

    #[test]
    fn averaging_over_samples() {
        let p = Partition::new(1, 1);
        let s1 = sample_from(vec![3.0], vec![1.0], &p);
        let s2 = sample_from(vec![1.0], vec![1.0], &p);
        let r = evaluate_errors(&[s1, s2], &p).unwrap();
        assert!((r.model - 1.0).abs() < 1e-12); // (2 + 0) / 2
        assert_eq!(r.expression, 0.0); // m = 1 ⇒ spread is identity
    }

    #[test]
    fn empty_and_mismatched_samples_are_errors() {
        let p = Partition::new(2, 2);
        assert!(evaluate_errors(&[], &p).is_err());
        let bad = ErrorSample {
            predicted_mgrid: CountMatrix::zeros(3), // wrong lattice
            actual_hgrid: CountMatrix::zeros(4),
        };
        assert!(evaluate_errors(&[bad], &p).is_err());
    }
}
