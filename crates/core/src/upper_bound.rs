//! Algorithm 3: `UpperBound(n, N, X, Model)` — the quantity the search
//! algorithms minimise.
//!
//! For an MGrid side `s` (`n = s²`), the upper bound of the total real
//! error is
//!
//! ```text
//! e(s) = n·MAE(f)  +  Σ_i Σ_j E_e(i, j)
//! ```
//!
//! The first term is supplied by a [`ModelErrorFn`] (training a prediction
//! model for side `s` and measuring its MGrid-level MAE — Eq. 20); the
//! second is computed analytically from the α field estimated on the
//! partition's HGrid lattice (Sec. III-B).

use crate::alpha::AlphaWindow;
use crate::alpha_cache::AlphaFieldCache;
use crate::error::CoreError;
use crate::search::{ErrorOracle, SyncErrorOracle};
use gridtuner_obs as obs;
use gridtuner_spatial::{Event, Partition, SlotClock, SpatialPartition};

/// Integer square root (floor), exact for any region count.
fn isqrt(n: usize) -> u32 {
    let n = n as u64;
    let mut s = (n as f64).sqrt() as u64;
    while (s + 1).saturating_mul(s + 1) <= n {
        s += 1;
    }
    while s.saturating_mul(s) > n {
        s -= 1;
    }
    s as u32
}

/// The model-error leg of Algorithm 3: everything that knows how to train
/// and evaluate a prediction model at a given MGrid side.
pub trait ModelErrorFn {
    /// Total model error `Σ_i E|λ̂_i − λ_i| ≈ n·MAE(f)` at MGrid side `s`.
    fn total_model_error(&mut self, mgrid_side: u32) -> f64;
}

impl<F: FnMut(u32) -> f64> ModelErrorFn for F {
    fn total_model_error(&mut self, mgrid_side: u32) -> f64 {
        self(mgrid_side)
    }
}

/// The typed, fallible generalisation of [`ModelErrorFn`] — the model leg
/// of the engine's session API. `HistoricalAverage`-backed city models,
/// the nn predictors, and testkit's synthetic oracles all plug in through
/// this one trait; failures surface as [`CoreError::Model`] instead of
/// panicking mid-search.
pub trait ModelErrorSource {
    /// Total model error at MGrid side `s`, or a typed failure.
    fn model_error(&mut self, mgrid_side: u32) -> Result<f64, CoreError>;

    /// Whether the source reads the ingested event log. When true, a data
    /// delta invalidates the session's per-side model-error memo; analytic
    /// sources (the default) keep their memo across ingests.
    fn data_dependent(&self) -> bool {
        false
    }
}

impl<F: FnMut(u32) -> f64> ModelErrorSource for F {
    fn model_error(&mut self, mgrid_side: u32) -> Result<f64, CoreError> {
        Ok(self(mgrid_side))
    }
}

/// A thread-safe model-error source: probes through `&self`, so a
/// parallel brute-force sweep can evaluate many sides concurrently.
pub trait SyncModelErrorSource: Sync {
    /// Total model error at MGrid side `s`, or a typed failure.
    fn model_error_sync(&self, mgrid_side: u32) -> Result<f64, CoreError>;

    /// See [`ModelErrorSource::data_dependent`].
    fn data_dependent(&self) -> bool {
        false
    }
}

impl<F: Fn(u32) -> f64 + Sync> SyncModelErrorSource for F {
    fn model_error_sync(&self, mgrid_side: u32) -> Result<f64, CoreError> {
        Ok(self(mgrid_side))
    }
}

/// Adapter presenting any infallible [`ModelErrorFn`] (closures included)
/// as a [`ModelErrorSource`].
pub struct InfallibleSource<M>(pub M);

impl<M: ModelErrorFn> ModelErrorSource for InfallibleSource<M> {
    fn model_error(&mut self, mgrid_side: u32) -> Result<f64, CoreError> {
        Ok(self.0.total_model_error(mgrid_side))
    }
}

/// An [`ErrorOracle`] implementing Algorithm 3: expression error from
/// historical events + model error from a [`ModelErrorFn`].
///
/// Construction performs the **single** event-log pass of the tuning run:
/// the log is distilled into an [`AlphaFieldCache`], and every probe's α
/// field is derived from the cache's digest — `expression_error` never
/// touches the raw events again. [`alpha_rescans`](Self::alpha_rescans)
/// exposes the pass count so harnesses can assert the invariant.
pub struct UpperBoundOracle<M> {
    alpha: AlphaFieldCache,
    hgrid_budget_side: u32,
    model: M,
}

impl<M: ModelErrorFn> UpperBoundOracle<M> {
    /// Creates the oracle. `hgrid_budget_side` is `√N` (128 in the paper).
    /// Scans `events` exactly once, here.
    pub fn new(
        events: Vec<Event>,
        clock: SlotClock,
        window: AlphaWindow,
        hgrid_budget_side: u32,
        model: M,
    ) -> Self {
        assert!(hgrid_budget_side > 0, "HGrid budget side must be positive");
        UpperBoundOracle {
            alpha: AlphaFieldCache::new(&events, &clock, &window),
            hgrid_budget_side,
            model,
        }
    }

    /// The partition Algorithm 3 would use for a given side.
    pub fn partition_for(&self, side: u32) -> Partition {
        Partition::for_budget(side, self.hgrid_budget_side)
    }

    /// Expression-error leg only (useful for reporting the decomposition).
    /// Served from the α cache: no event-log access. Routes through the
    /// cache's batched kernel so the pmf memo stays warm across probes.
    pub fn expression_error(&self, side: u32) -> f64 {
        // (The "expression_error" span opens inside the batched sweep, the
        // common entry point for both this oracle and the harnesses.)
        let part = self.partition_for(side);
        match self.alpha.expression_error(&part) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Model-error leg only.
    pub fn model_error(&mut self, side: u32) -> f64 {
        self.model.total_model_error(side)
    }

    /// Expression-error leg for any [`SpatialPartition`] — the oracle's
    /// trait-parameterised face. Served from the same α cache and pmf memo
    /// as [`expression_error`](Self::expression_error); for a
    /// [`UniformGrid`](gridtuner_spatial::UniformGrid) of side `s` the
    /// result is bit-identical to `expression_error(s)` when the lattice
    /// sides coincide.
    pub fn partition_expression_error<P: SpatialPartition + Sync>(
        &self,
        partition: &P,
    ) -> Result<f64, CoreError> {
        self.alpha.partition_expression_error(partition)
    }

    /// Model-error leg for a partition with `n_regions` regions. The model
    /// trait only knows square sides, so a non-square region count is
    /// bracketed by the two nearest squares `s₁² ≤ R ≤ (s₁+1)²` and the
    /// error is interpolated linearly in `n` — exact for model curves
    /// linear in n (the analytic `c·n` sources the goldens use) and a
    /// monotone estimate otherwise.
    pub fn model_error_for_regions(&mut self, n_regions: usize) -> f64 {
        let s1 = isqrt(n_regions.max(1)).max(1);
        let n1 = (s1 as usize).pow(2);
        if n1 == n_regions.max(1) {
            return self.model.total_model_error(s1);
        }
        let s2 = s1 + 1;
        let n2 = (s2 as usize).pow(2);
        let lo = self.model.total_model_error(s1);
        let hi = self.model.total_model_error(s2);
        let t = (n_regions - n1) as f64 / (n2 - n1) as f64;
        lo + t * (hi - lo)
    }

    /// Theorem II.1's upper bound for an arbitrary partition: per-region
    /// expression error plus the region-count model leg.
    pub fn partition_bound<P: SpatialPartition + Sync>(
        &mut self,
        partition: &P,
    ) -> Result<f64, CoreError> {
        let expr = self.alpha.partition_expression_error(partition)?;
        Ok(expr + self.model_error_for_regions(partition.n_regions()))
    }

    /// Full event-log passes performed since construction (always 1).
    pub fn alpha_rescans(&self) -> u64 {
        self.alpha.full_scans()
    }

    /// The α cache backing this oracle.
    pub fn alpha_cache(&self) -> &AlphaFieldCache {
        &self.alpha
    }
}

impl<M: ModelErrorFn> ErrorOracle for UpperBoundOracle<M> {
    fn eval(&mut self, side: u32) -> f64 {
        #[cfg(feature = "check-invariants")]
        assert_eq!(
            self.alpha.full_scans(),
            1,
            "tuning hot path rescanned the event log"
        );
        let _span = obs::span!("probe", side = side);
        obs::counter!("tune.probes").inc();
        let expr = self.expression_error(side);
        let model = self.model.total_model_error(side);
        let total = expr + model;
        obs::event!(
            "probe",
            side = side,
            expression_error = expr,
            model_error = model,
            total = total,
        );
        total
    }
}

/// When the model leg is a shareable closure the oracle can be probed
/// through `&self`, enabling [`brute_force_parallel`].
///
/// [`brute_force_parallel`]: crate::search::brute_force_parallel
impl<M: Fn(u32) -> f64 + Sync> SyncErrorOracle for UpperBoundOracle<M> {
    fn eval_sync(&self, side: u32) -> f64 {
        #[cfg(feature = "check-invariants")]
        assert_eq!(
            self.alpha.full_scans(),
            1,
            "tuning hot path rescanned the event log"
        );
        let _span = obs::span!("probe", side = side);
        obs::counter!("tune.probes").inc();
        let expr = self.expression_error(side);
        let model = (self.model)(side);
        let total = expr + model;
        obs::event!(
            "probe",
            side = side,
            expression_error = expr,
            model_error = model,
            total = total,
        );
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridtuner_spatial::Point;

    /// Events concentrated in one corner of the map, every day at slot 0.
    fn corner_events(days: u32, per_day: usize) -> Vec<Event> {
        let mut out = Vec::new();
        for d in 0..days {
            for i in 0..per_day {
                let f = i as f64 / per_day as f64;
                out.push(Event::new(
                    Point::new(0.05 + 0.1 * f, 0.05 + 0.07 * ((i * 7) % 10) as f64 / 10.0),
                    d * 24 * 60,
                ));
            }
        }
        out
    }

    fn window() -> AlphaWindow {
        AlphaWindow {
            slot_of_day: 0,
            day_start: 0,
            day_end: 7,
            weekdays_only: false,
        }
    }

    #[test]
    fn upper_bound_is_sum_of_legs() {
        let events = corner_events(7, 40);
        let clock = SlotClock::default();
        let mut oracle =
            UpperBoundOracle::new(events, clock, window(), 16, |s: u32| (s * s) as f64 * 0.1);
        let e = oracle.eval(4);
        let expr = oracle.expression_error(4);
        let model = oracle.model_error(4);
        assert!((e - (expr + model)).abs() < 1e-9);
        assert!(expr > 0.0, "concentrated events must have expression error");
    }

    #[test]
    fn expression_leg_decreases_and_model_leg_increases() {
        let events = corner_events(7, 60);
        let clock = SlotClock::default();
        let model = |s: u32| (s * s) as f64 * 0.5;
        let mut oracle = UpperBoundOracle::new(events, clock, window(), 16, model);
        let e_coarse = oracle.expression_error(1);
        let e_fine = oracle.expression_error(16);
        assert!(
            e_coarse > e_fine,
            "expression: coarse {e_coarse} fine {e_fine}"
        );
        assert!(oracle.model_error(16) > oracle.model_error(1));
    }

    #[test]
    fn induced_curve_is_u_shaped() {
        // With a linear-in-n model error and a concentrated α field, e(s)
        // must dip somewhere strictly inside the range (the paper's
        // decrease-then-increase claim, Sec. III-C). The model-error slope
        // is chosen so the right edge (where the expression error vanishes
        // because m = 1) is clearly worse than the interior.
        let events = corner_events(7, 200);
        let clock = SlotClock::default();
        let mut oracle =
            UpperBoundOracle::new(events, clock, window(), 16, |s: u32| (s * s) as f64 * 2.0);
        let curve: Vec<f64> = (1..=16).map(|s| oracle.eval(s)).collect();
        let min_idx = curve
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            min_idx > 0 && min_idx < curve.len() - 1,
            "minimum at the boundary: idx={min_idx}, curve={curve:?}"
        );
    }

    #[test]
    fn trait_parameterised_oracle_matches_square_path() {
        use gridtuner_spatial::UniformGrid;
        let events = corner_events(7, 60);
        let clock = SlotClock::default();
        let mut oracle =
            UpperBoundOracle::new(events, clock, window(), 16, |s: u32| (s * s) as f64 * 0.5);
        for side in [1u32, 3, 4] {
            let u = UniformGrid::for_budget(side, 16);
            let via_trait = oracle.partition_expression_error(&u).unwrap();
            let legacy = oracle.expression_error(side);
            assert_eq!(via_trait.to_bits(), legacy.to_bits(), "side {side}");
            // Square region counts take the exact (non-interpolated) leg.
            let bound = oracle.partition_bound(&u).unwrap();
            assert!((bound - oracle.eval(side)).abs() < 1e-12);
        }
    }

    #[test]
    fn region_model_leg_interpolates_linearly_in_n() {
        let events = corner_events(1, 1);
        let mut oracle =
            UpperBoundOracle::new(events, SlotClock::default(), window(), 16, |s: u32| {
                (s * s) as f64 * 0.5
            });
        // Linear-in-n model: interpolation is exact at every region count.
        for regions in [1usize, 2, 3, 5, 9, 12, 17, 100] {
            let got = oracle.model_error_for_regions(regions);
            assert!(
                (got - 0.5 * regions as f64).abs() < 1e-9,
                "R={regions}: {got}"
            );
        }
    }

    #[test]
    fn isqrt_is_exact() {
        for n in 0usize..2000 {
            let s = isqrt(n) as usize;
            assert!(s * s <= n && (s + 1) * (s + 1) > n, "n={n} s={s}");
        }
    }

    #[test]
    fn partition_for_respects_budget() {
        let events = corner_events(1, 1);
        let oracle =
            UpperBoundOracle::new(events, SlotClock::default(), window(), 128, |_s: u32| 0.0);
        for side in [1u32, 4, 16, 24, 76] {
            let p = oracle.partition_for(side);
            assert!(p.total_hgrids() >= 128 * 128, "side {side}");
            assert_eq!(p.mgrid_side(), side);
        }
    }
}
