//! The paper's primary contribution: grid-size selection for spatiotemporal
//! prediction models.
//!
//! The crate decomposes the **real error** of a prediction model evaluated
//! on homogeneous grids (HGrids) into a **model error** and an
//! **expression error** (Theorem II.1):
//!
//! ```text
//! E_r(i,j) ≤ E_m(i,j) + E_e(i,j)
//! ```
//!
//! and provides everything needed to minimise the right-hand side over the
//! number of model grids `n`:
//!
//! * [`poisson`] — numerically-stable Poisson machinery (log-space pmf,
//!   closed-form mean absolute deviation, exact sampling);
//! * [`simd`] — the dependency-free 4-lane `f64` layer the hot kernels
//!   dispatch through: AVX2 intrinsics under runtime detection, with a
//!   bit-exact scalar emulation of the same canonical lane association;
//! * [`expression`] — the expression error `E_e(i,j) = E|λ̄_ij − λ_ij|`
//!   under the Poisson model: the naive `O(mK³)` computation, the paper's
//!   Algorithm 1 (`O(mK²)`), Algorithm 2 (`O(mK)`), and an adaptive-window
//!   variant for production field sweeps;
//! * [`alpha`] — estimation of the per-HGrid mean `α_ij` from historical
//!   events;
//! * [`alpha_cache`] — the one-pass α-field cache that keeps the tuning
//!   hot path off the raw event log;
//! * [`dalpha`] — the unevenness metric `D_α(N)` (Eq. 2) and the rule for
//!   picking the HGrid budget `N` (Theorem III.1);
//! * [`errors`] — empirical estimators of real/model/expression error from
//!   prediction–actual pairs (Definitions 3–5);
//! * [`resample`] — seeded splitmix64 bootstrap resampling of the event
//!   log, feeding the engine's uncertainty stage;
//! * [`upper_bound`] — Algorithm 3 (`UpperBound(n, N, X, Model)`);
//! * [`search`] — Brute-force, Ternary Search (Algorithm 4) and the
//!   Iterative Method (Algorithm 5) over the upper bound;
//! * [`tuner`] — the `GridTuner` facade that wires the above together.

// Library code must not panic on fallible paths; tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod alpha;
pub mod alpha_cache;
pub mod dalpha;
pub mod error;
pub mod errors;
pub mod expr_kernel;
pub mod expression;
pub mod kselect;
pub mod metrics;
pub mod poisson;
pub mod resample;
pub mod search;
pub mod simd;
pub mod tuner;
pub mod upper_bound;

pub use alpha::estimate_alpha;
pub use alpha_cache::{cached_alpha, AlphaFieldCache};
pub use dalpha::{d_alpha, region_d_alpha, select_hgrid_side};
pub use error::CoreError;
pub use errors::ErrorReport;
pub use expr_kernel::{dedup_groups, ExprWorkspace, PmfMemo, PmfTable};
pub use expression::{
    expression_error_alg1, expression_error_alg2, expression_error_naive,
    expression_error_windowed, mgrid_expression_error, partition_expression_error_seq,
    total_expression_error, total_expression_error_memo, total_expression_error_percell,
    total_expression_error_seq, try_partition_expression_error, try_total_expression_error,
};
pub use kselect::{recommended_k, truncation_error_bound};
pub use resample::{replicate_seed, resample_events, splitmix64, ReplicateRng};
pub use search::{
    brute_force, brute_force_parallel, iterative_method, ternary_search, try_brute_force,
    try_brute_force_parallel, try_iterative_method, try_ternary_search, ErrorOracle, MemoOracle,
    SearchOutcome, SyncErrorOracle,
};
pub use simd::{env_simd_override, set_simd_enabled, simd_enabled, SimdBackend};
pub use tuner::{GridTuner, TunerConfig, TunerResult};
pub use upper_bound::{
    InfallibleSource, ModelErrorFn, ModelErrorSource, SyncModelErrorSource, UpperBoundOracle,
};
