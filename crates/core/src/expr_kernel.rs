//! The batched expression-error kernel: the tuning hot path's inner loop.
//!
//! [`crate::expression::expression_error_windowed`] is exact but pays for
//! every call: four `Vec` allocations, a fresh Poisson pmf build for both
//! the cell rate `a` and the rest-of-MGrid rate `b`, and the prefix-sum
//! pass over the `b` window. A field sweep calls it once per *distinct*
//! rate per MGrid — thousands of times per probe — even though α fields
//! estimated as `count / days` take few distinct values (mostly zeros and
//! small multiples of `1/days`) and those values recur across MGrids and
//! across probes.
//!
//! This module batches the sweep around three reuse layers:
//!
//! * [`PmfTable`] — one rate's pmf plus its cumulative and first-moment
//!   prefix sums, in buffers that refill in place ([`PmfTable::fill`]);
//! * [`ExprWorkspace`] — per-worker scratch: the gathered α row, the
//!   dedup index grouping identical rates (each group evaluated **once**,
//!   accumulated multiplicity-weighted in first-occurrence order, so the
//!   total is deterministic), and two scratch tables. After warm-up a
//!   steady-state sweep performs **zero heap allocations per cell** — a
//!   property [`ExprWorkspace::realloc_bytes`] lets tests assert;
//! * [`PmfMemo`] — a bounded, thread-safe table cache keyed by the f64
//!   bits of the rate. Rates recur across MGrids within a probe and across
//!   probes within a session (MGrid totals repartition the same event
//!   mass), so [`crate::alpha_cache::AlphaFieldCache`] owns one per
//!   session and incremental re-tunes inherit a warm cache.
//!
//! Every layer preserves the windowed kernel's arithmetic bit for bit: a
//! memo hit, a scratch refill and a fresh
//! [`expression_error_windowed`](crate::expression::expression_error_windowed)
//! call all produce identical bits for the same `(a, b, m)`.

use crate::error::CoreError;
use crate::poisson::{mass_window, poisson_pmf_into};
use crate::simd::{F64x4, Lanes, ScalarLanes};
use gridtuner_obs as obs;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{
    Arc, OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError,
};

/// Multiply-shift hasher for the f64-bit rate keys the kernel hashes
/// millions of times per tune. The keys are already high-entropy u64s
/// (f64 bit patterns), so a single 128-bit-quality mix step beats the
/// default SipHash by an order of magnitude on the dedup hot path.
#[derive(Default, Clone, Copy)]
struct RateHash(u64);

impl Hasher for RateHash {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused on the hot path): FNV-1a.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        // The 64-bit finalizer of MurmurHash3 — full avalanche, two
        // multiplies.
        let mut h = x ^ (x >> 33);
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        self.0 = h ^ (h >> 33);
    }
}

type RateMap<V> = HashMap<u64, V, BuildHasherDefault<RateHash>>;

/// Fold-checkpoint stride for [`PmfTable`]: the running cumulative /
/// first-moment fold state is stored every this many pmf entries, so a
/// prefix query resumes from the nearest checkpoint and folds at most
/// this many entries instead of the whole window. Two extra f64 per
/// stride ≈ 3% memory overhead at 64.
const CKPT_STRIDE: usize = 64;

/// One rate's windowed Poisson table: the pmf over the rate's mass window
/// plus the windowed totals `Σ P(k)` and `Σ k·P(k)`. The cumulative and
/// first-moment prefix values the Algorithm 2 brackets read are folded on
/// the fly during evaluation, resumed from sparse checkpoints of the fold
/// state stored every [`CKPT_STRIDE`] entries. The fold is the
/// **canonical 4-lane association** (see [`crate::simd`]): within a
/// stride, entry `j` accumulates into lane `j mod 4`, and stride
/// boundaries fold the four lanes down `(l₀+l₁)+(l₂+l₃)` into a scalar
/// base — so the AVX2 fill, the scalar-emulation fill and the
/// entry-at-a-time evaluation walk all produce identical bits, while each
/// table holds one full-length buffer instead of three (≈3× more tables
/// fit a given memo budget). Fills in place, so a scratch instance reused
/// across cells stops allocating once its buffers reach the largest
/// window seen.
#[derive(Debug, Clone, Default)]
pub struct PmfTable {
    lo: u64,
    hi: u64,
    pmf: Vec<f64>,
    /// `ckpt[k]` = the (cum, mom) fold state after the first `k·STRIDE`
    /// pmf entries, stored lane-folded (canonical scalars); `ckpt[0]` is
    /// `(0, 0)`.
    ckpt: Vec<(f64, f64)>,
    cum_total: f64,
    mom_total: f64,
}

impl PmfTable {
    /// A freshly allocated table for `rate`.
    pub fn build(rate: f64) -> PmfTable {
        let mut t = PmfTable::default();
        t.fill(rate);
        t
    }

    /// Refills the table for `rate` in place, reallocating only when the
    /// mass window outgrows the buffers. The pmf values, prefix sums and
    /// totals are bit-identical to what
    /// [`expression_error_windowed`](crate::expression::expression_error_windowed)
    /// computes internally for the same rate.
    pub fn fill(&mut self, rate: f64) {
        let (lo, hi) = mass_window(rate, 2);
        poisson_pmf_into(rate, lo, hi, &mut self.pmf);
        self.ckpt.clear();
        self.ckpt.push((0.0, 0.0));
        let (c, s) = fold_dispatch(lo, &self.pmf, &mut self.ckpt);
        self.lo = lo;
        self.hi = hi;
        self.cum_total = c;
        self.mom_total = s;
    }

    /// Window length (`hi − lo + 1`).
    pub fn len(&self) -> usize {
        self.pmf.len()
    }

    /// Whether the table has never been filled.
    pub fn is_empty(&self) -> bool {
        self.pmf.is_empty()
    }

    /// Total probability mass inside the window (≈ 1).
    pub fn cum_total(&self) -> f64 {
        self.cum_total
    }

    /// Windowed first moment `Σ k·P(k)` (≈ the rate).
    pub fn mom_total(&self) -> f64 {
        self.mom_total
    }

    /// Heap bytes currently held by the pmf and checkpoint buffers.
    pub fn bytes(&self) -> usize {
        self.pmf.capacity() * std::mem::size_of::<f64>()
            + self.ckpt.capacity() * std::mem::size_of::<(f64, f64)>()
    }

    /// f64 slots this table retains (pmf entries plus checkpoint pairs) —
    /// the unit the [`PmfMemo`] budget is accounted in.
    fn slots(&self) -> usize {
        self.pmf.len() + 2 * self.ckpt.len()
    }
}

/// Routes the checkpoint fold to the AVX2 instantiation when enabled and
/// to the scalar emulation otherwise, bumping the SIMD routing counters
/// once per fill (never inside the lane loops).
fn fold_dispatch(lo: u64, pmf: &[f64], ckpt: &mut Vec<(f64, f64)>) -> (f64, f64) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::simd_enabled() {
        obs::counter!("expr.simd_lanes_used").add(pmf.len() as u64);
        // Safety: simd_enabled() implies AVX2 was detected at runtime.
        return unsafe { fold_avx2(lo, pmf, ckpt) };
    }
    obs::counter!("expr.simd_fallbacks").inc();
    fold_scalar(lo, pmf, ckpt)
}

fn fold_scalar(lo: u64, pmf: &[f64], ckpt: &mut Vec<(f64, f64)>) -> (f64, f64) {
    // Safety: the scalar emulation has no hardware precondition.
    unsafe { fold_body::<ScalarLanes>(lo, pmf, ckpt) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fold_avx2(lo: u64, pmf: &[f64], ckpt: &mut Vec<(f64, f64)>) -> (f64, f64) {
    fold_body::<crate::simd::Avx2Lanes>(lo, pmf, ckpt)
}

/// The canonical 4-lane (cum, mom) fold, written once over the [`Lanes`]
/// backend: entry `j` accumulates into lane `j mod 4` (`mom` as mul then
/// add — never fused), every [`CKPT_STRIDE`] entries the lanes fold down
/// `(l₀+l₁)+(l₂+l₃)` into the scalar base and a checkpoint is pushed,
/// and the return value is the base plus the final partial lanes. The
/// stride is a multiple of 4, so full strides are whole 4-wide waves and
/// the sub-wave tail lands in the same lanes a wave would have used.
#[inline(always)]
unsafe fn fold_body<B: Lanes>(lo: u64, pmf: &[f64], ckpt: &mut Vec<(f64, f64)>) -> (f64, f64) {
    let len = pmf.len();
    let mut base_c = 0.0f64;
    let mut base_s = 0.0f64;
    let mut cl = F64x4::ZERO;
    let mut sl = F64x4::ZERO;
    let mut j = 0usize;
    while j + CKPT_STRIDE <= len {
        let stride_end = j + CKPT_STRIDE;
        while j < stride_end {
            let p = B::load(&pmf[j..]);
            let k0 = lo + j as u64;
            let kv = F64x4([k0 as f64, (k0 + 1) as f64, (k0 + 2) as f64, (k0 + 3) as f64]);
            cl = B::add(cl, p);
            sl = B::add(sl, B::mul(kv, p));
            j += 4;
        }
        base_c += cl.hsum();
        base_s += sl.hsum();
        cl = F64x4::ZERO;
        sl = F64x4::ZERO;
        ckpt.push((base_c, base_s));
    }
    // Whole waves past the last checkpoint…
    while j + 4 <= len {
        let p = B::load(&pmf[j..]);
        let k0 = lo + j as u64;
        let kv = F64x4([k0 as f64, (k0 + 1) as f64, (k0 + 2) as f64, (k0 + 3) as f64]);
        cl = B::add(cl, p);
        sl = B::add(sl, B::mul(kv, p));
        j += 4;
    }
    // …then the sub-wave tail, entry by entry into its canonical lane.
    while j < len {
        let p = pmf[j];
        cl.0[j % 4] += p;
        sl.0[j % 4] += (lo + j as u64) as f64 * p;
        j += 1;
    }
    (base_c + cl.hsum(), base_s + sl.hsum())
}

/// `E_e` for one `(a, b, m)` group from prebuilt tables — the exact
/// arithmetic of `expression_error_windowed` with the pmf/prefix work
/// hoisted out, so the result is bit-identical to a fresh call.
///
/// Each query point `t = (m−1)·kh − 1` needs the cumulative and
/// first-moment prefixes of `tb` at `t`. Queries increase with `kh`, so a
/// single running fold is shared across them: dense queries (small `m−1`)
/// walk forward a few entries each, and a query far ahead of the
/// accumulator jumps it to the nearest [`CKPT_STRIDE`] checkpoint first,
/// folding at most one stride instead of the gap. Past the window's end
/// the prefix saturates to the windowed totals.
///
/// The running fold carries the canonical 4-lane state ([`fold_body`]):
/// entry `j` lands in lane `j mod 4`, stride boundaries fold the lanes
/// into the scalar base, and a prefix query reads base plus the partial
/// lanes' tree fold. Checkpoints, the walk and the totals are all states
/// of that same fold, so every path — including the AVX2 fill — yields
/// identical bits.
fn eval_tables(ta: &PmfTable, tb: &PmfTable, m: usize) -> f64 {
    debug_assert!(m > 1, "group evaluation requires m > 1");
    let lb = tb.lo as i64;
    let len = tb.pmf.len();
    let c_tot = tb.cum_total;
    let s_tot = tb.mom_total;
    let mut j = 0usize; // tb entries folded into the running prefix
    let mut base_c = 0.0f64; // scalar base: strides folded so far
    let mut base_s = 0.0f64;
    let mut cl = F64x4::ZERO; // partial lanes of the current stride
    let mut sl = F64x4::ZERO;
    let mut total = 0.0;
    for (i, &p_a) in ta.pmf.iter().enumerate() {
        let kh = ta.lo + i as u64;
        let t = ((m - 1) as u64 * kh) as i64 - 1;
        let (c_t, s_t) = if t < lb {
            (0.0, 0.0)
        } else {
            // The query needs the fold over `end` leading entries.
            let end = (t - lb + 1) as usize;
            if end >= len {
                (c_tot, s_tot)
            } else {
                let q = end / CKPT_STRIDE;
                if q * CKPT_STRIDE > j {
                    j = q * CKPT_STRIDE;
                    (base_c, base_s) = tb.ckpt[q];
                    cl = F64x4::ZERO;
                    sl = F64x4::ZERO;
                }
                while j < end {
                    let p = tb.pmf[j];
                    cl.0[j % 4] += p;
                    sl.0[j % 4] += (tb.lo + j as u64) as f64 * p;
                    j += 1;
                    if j.is_multiple_of(CKPT_STRIDE) {
                        base_c += cl.hsum();
                        base_s += sl.hsum();
                        cl = F64x4::ZERO;
                        sl = F64x4::ZERO;
                    }
                }
                (base_c + cl.hsum(), base_s + sl.hsum())
            }
        };
        let bracket_c = 2.0 * c_t - c_tot;
        let bracket_s = 2.0 * s_t - s_tot;
        total += p_a * ((m - 1) as f64 * kh as f64 * bracket_c - bracket_s);
    }
    total / m as f64
}

/// `E_e(a, b, m)` from freshly built tables — the canonical definition of
/// the windowed expression error, which every other path (memo hit,
/// scratch refill, a = 0 fast path) must match bit for bit.
/// [`crate::expression::expression_error_windowed`] is this plus argument
/// validation.
pub(crate) fn expression_error_kernel(a: f64, b: f64, m: usize) -> f64 {
    let ta = PmfTable::build(a);
    let tb = PmfTable::build(b);
    eval_tables(&ta, &tb, m)
}

/// Default entry cap for [`PmfMemo`] — above the slot budget divided by a
/// typical window, so the f64 budget is the limit that usually bites.
pub const MEMO_MAX_ENTRIES: usize = 65_536;

/// Default retained-buffer budget for [`PmfMemo`], in f64 slots across all
/// cached tables (16 Mi slots = 128 MiB). Tables store one pmf buffer
/// plus ~3% of fold checkpoints, so the budget admits roughly three times
/// the tables the same bytes would have held with materialised prefix
/// arrays. Sized to hold every distinct rate of a paper-scale sweep
/// (~41k tables, ~13 Mi slots measured on the NYC benchmark city) with
/// headroom, so steady-state re-tunes run build-free; smaller deployments
/// can tighten it through [`PmfMemo::with_limits`].
pub const MEMO_MAX_F64S: usize = 16 << 20;

/// Shard count for [`PmfMemo`]: independent read-mostly segments keyed by
/// the high bits of the mixed rate hash, so concurrent workers only
/// contend when they touch the same shard at the same time *and* one of
/// them is inserting. Power of two for a mask-only selection.
const MEMO_SHARDS: usize = 16;

/// A bounded, thread-safe cross-probe cache of [`PmfTable`]s, keyed by the
/// f64 **bits** of the rate (α values are exact `count / days` quotients,
/// so bitwise keying is exact, not fragile).
///
/// The cache is a pure function of the rate: entries never go stale, so an
/// [`AlphaFieldCache`](crate::alpha_cache::AlphaFieldCache) keeps its memo
/// across [`append`](crate::alpha_cache::AlphaFieldCache::append) calls
/// and incremental re-tunes start warm. Admission is bounded two ways —
/// an entry cap and a retained-f64 budget — and a rejected rate simply
/// falls back to the caller's scratch table (same bits either way).
///
/// Storage is split across [`MEMO_SHARDS`] `RwLock`ed segments and the
/// caps live in shared atomics, so the warm path is a single uncontended
/// shard read-lock (and most lookups never even get here: the
/// per-workspace L1 serves repeats lock-free). `pmf_memo.lock_waits`
/// counts the times any shard lock actually had to block.
pub struct PmfMemo {
    shards: Vec<RwLock<RateMap<Arc<PmfTable>>>>,
    /// Cached tables across all shards (reserved before building).
    entries: AtomicUsize,
    /// f64 slots retained across every cached table (window length plus
    /// checkpoint pairs each) — the memory the budget bounds.
    retained: AtomicUsize,
    max_entries: usize,
    max_f64s: usize,
    hits: obs::metrics::Counter,
    misses: obs::metrics::Counter,
    lock_waits: obs::metrics::Counter,
}

impl Default for PmfMemo {
    fn default() -> Self {
        PmfMemo::with_limits(MEMO_MAX_ENTRIES, MEMO_MAX_F64S)
    }
}

/// Global per-shard lock-wait counters, `pmf_memo.shard{i}.lock_waits`.
/// Registered once so the profiler can attribute contention to the shard
/// that actually blocked (the aggregate `pmf_memo.lock_waits` says *that*
/// workers collided; the shard split says *where*).
fn shard_wait_counters() -> &'static [Arc<obs::metrics::Counter>] {
    static COUNTERS: OnceLock<Vec<Arc<obs::metrics::Counter>>> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        (0..MEMO_SHARDS)
            .map(|i| obs::metrics::counter(&format!("pmf_memo.shard{i}.lock_waits")))
            .collect()
    })
}

/// Bumps the instance, aggregate and per-shard wait counters on a blocked
/// acquisition.
fn note_lock_wait(waits: &obs::metrics::Counter, shard_idx: usize) {
    waits.inc();
    obs::counter!("pmf_memo.lock_waits").inc();
    shard_wait_counters()[shard_idx].inc();
}

/// Poison-immune read lock that counts the times it had to block: an
/// uncontended acquisition is the expected case, so a failed `try_read`
/// is the contention signal `pmf_memo.lock_waits` (and its per-shard
/// split) records.
fn read_counted<'a, T>(
    lock: &'a RwLock<T>,
    waits: &obs::metrics::Counter,
    shard_idx: usize,
) -> RwLockReadGuard<'a, T> {
    match lock.try_read() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            note_lock_wait(waits, shard_idx);
            lock.read().unwrap_or_else(PoisonError::into_inner)
        }
    }
}

/// Write-side counterpart of [`read_counted`].
fn write_counted<'a, T>(
    lock: &'a RwLock<T>,
    waits: &obs::metrics::Counter,
    shard_idx: usize,
) -> RwLockWriteGuard<'a, T> {
    match lock.try_write() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            note_lock_wait(waits, shard_idx);
            lock.write().unwrap_or_else(PoisonError::into_inner)
        }
    }
}

impl PmfMemo {
    /// A memo bounded to `max_entries` tables and `max_f64s` retained f64
    /// slots (whichever bites first).
    pub fn with_limits(max_entries: usize, max_f64s: usize) -> PmfMemo {
        PmfMemo {
            shards: (0..MEMO_SHARDS)
                .map(|_| RwLock::new(RateMap::default()))
                .collect(),
            entries: AtomicUsize::new(0),
            retained: AtomicUsize::new(0),
            max_entries,
            max_f64s,
            hits: obs::metrics::Counter::new(),
            misses: obs::metrics::Counter::new(),
            lock_waits: obs::metrics::Counter::new(),
        }
    }

    /// The shard index for `key`, selected from the *mixed* hash's high
    /// bits so shard choice and in-shard bucket choice stay independent.
    fn shard_index(key: u64) -> usize {
        let mut h = RateHash::default();
        h.write_u64(key);
        (h.finish() >> (64 - 4)) as usize & (MEMO_SHARDS - 1)
    }

    /// Reserves one entry plus `slots` f64s against the caps, atomically.
    /// Sequential callers see exactly the pre-shard semantics: the cap
    /// check happens before any build work is paid for.
    fn reserve(&self, slots: usize) -> bool {
        if self
            .entries
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |e| {
                (e < self.max_entries).then_some(e + 1)
            })
            .is_err()
        {
            return false;
        }
        if self
            .retained
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| {
                (r + slots <= self.max_f64s).then_some(r + slots)
            })
            .is_err()
        {
            self.entries.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Returns a reservation taken by [`reserve`](Self::reserve) — used
    /// when an insert race means the reserved table is not retained.
    fn release(&self, slots: usize) {
        self.entries.fetch_sub(1, Ordering::SeqCst);
        self.retained.fetch_sub(slots, Ordering::SeqCst);
    }

    /// The cached table for `rate`, building and admitting it on a miss.
    /// Returns `None` when the table cannot be admitted (budget or entry
    /// cap) — the caller evaluates from scratch instead; both paths yield
    /// bit-identical values.
    pub fn get_or_build(&self, rate: f64) -> Option<Arc<PmfTable>> {
        let key = rate.to_bits();
        let shard_idx = Self::shard_index(key);
        let shard = &self.shards[shard_idx];
        if let Some(t) = read_counted(shard, &self.lock_waits, shard_idx).get(&key) {
            self.hits.inc();
            obs::counter!("expr.pmf_memo_hits").inc();
            return Some(Arc::clone(t));
        }
        self.misses.inc();
        let (lo, hi) = mass_window(rate, 2);
        let len = (hi - lo + 1) as usize;
        // Exactly what `fill` will retain: the pmf plus one checkpoint
        // pair per stride (and the leading zero state).
        let slots = len + 2 * (len / CKPT_STRIDE + 1);
        // Reserve before building: an oversized window (or a full memo)
        // never pays for the build, and concurrent builders can never
        // overshoot the caps.
        if !self.reserve(slots) {
            return None;
        }
        let built = Arc::new(PmfTable::build(rate));
        debug_assert_eq!(built.slots(), slots, "admission must match fill");
        let mut guard = write_counted(shard, &self.lock_waits, shard_idx);
        match guard.entry(key) {
            Entry::Occupied(e) => {
                // Lost an insert race: another worker admitted this rate
                // while we built. Hand back its table and return the
                // reservation.
                let existing = Arc::clone(e.get());
                drop(guard);
                self.release(slots);
                Some(existing)
            }
            Entry::Vacant(v) => {
                v.insert(Arc::clone(&built));
                Some(built)
            }
        }
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that had to build (or were refused admission).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Times a shard lock had to block (contention signal).
    pub fn lock_waits(&self) -> u64 {
        self.lock_waits.get()
    }

    /// Cached tables.
    pub fn entries(&self) -> usize {
        self.entries.load(Ordering::SeqCst)
    }

    /// f64 slots retained across all cached tables.
    pub fn retained_f64s(&self) -> usize {
        self.retained.load(Ordering::SeqCst)
    }
}

/// Groups identical values of `alphas` in first-occurrence order, with
/// multiplicities: the dedup the batched kernel applies per MGrid, exposed
/// so property tests can pin weight conservation (`Σ multiplicities = m`).
pub fn dedup_groups(alphas: &[f64]) -> Vec<(f64, u32)> {
    let mut index: RateMap<u32> = RateMap::default();
    let mut uniq: Vec<(f64, u32)> = Vec::new();
    for &a in alphas {
        match index.entry(a.to_bits()) {
            Entry::Occupied(e) => uniq[*e.get() as usize].1 += 1,
            Entry::Vacant(e) => {
                e.insert(uniq.len() as u32);
                uniq.push((a, 1));
            }
        }
    }
    uniq
}

/// Entry cap for the workspace-local table cache: far above the distinct
/// rate count of a paper-scale sweep, so the epoch-style clear is a
/// safety valve, not a steady-state event.
const L1_MAX_ENTRIES: usize = 1 << 16;

/// Per-worker scratch state for the batched sweep: the gathered α row, the
/// dedup index, two scratch [`PmfTable`]s for rates the memo declines, and
/// an L1 `rate → Arc` cache of memo-admitted tables so repeated rates
/// skip the memo's mutex and refcount traffic entirely (the L1 shares the
/// memo's tables, so it adds per-entry bookkeeping, not table copies).
/// Every buffer refills in place, so a steady-state sweep allocates
/// nothing per cell — [`realloc_bytes`](Self::realloc_bytes) stays flat.
///
/// Local tallies (cells, dedup hits, kernel evaluations, buffer growth)
/// are kept as plain integers on the hot path and flushed to the global
/// registry counters `expr.cell_evals`, `expr.dedup_hits`, `expr.evals`
/// and `expr.workspace_bytes` when the workspace drops.
#[derive(Default)]
pub struct ExprWorkspace {
    alphas: Vec<f64>,
    uniq: Vec<(f64, u32)>,
    index: RateMap<u32>,
    l1: RateMap<Arc<PmfTable>>,
    ta: PmfTable,
    tb: PmfTable,
    cells: u64,
    dedup_hits: u64,
    kernel_evals: u64,
    realloc_bytes: u64,
    reallocs: u64,
}

impl ExprWorkspace {
    /// An empty workspace; buffers grow on first use and then stick.
    pub fn new() -> ExprWorkspace {
        ExprWorkspace::default()
    }

    /// Validating form of [`mgrid_error_trusted`](Self::mgrid_error_trusted):
    /// rejects non-finite or negative rates as [`CoreError::Data`] before
    /// touching the kernel.
    pub fn mgrid_error(&mut self, alphas: &[f64], memo: &PmfMemo) -> Result<f64, CoreError> {
        for (j, &a) in alphas.iter().enumerate() {
            if !a.is_finite() || a < 0.0 {
                return Err(CoreError::Data(format!(
                    "α value {a} at local HGrid {j} is non-finite or negative"
                )));
            }
        }
        Ok(self.mgrid_error_trusted(alphas.iter().copied(), memo))
    }

    /// Sum of `E_e(i, j)` over one MGrid's HGrid rates — the batched
    /// equivalent of the per-cell windowed loop, multiplicity-weighted
    /// over deduplicated rates in first-occurrence order (deterministic:
    /// the order depends only on the input sequence).
    ///
    /// Trusts the caller to have validated the rates (the field-level
    /// entry points validate once per field, not once per cell).
    pub fn mgrid_error_trusted(
        &mut self,
        alphas: impl IntoIterator<Item = f64>,
        memo: &PmfMemo,
    ) -> f64 {
        let fp_before = self.footprint_bytes();
        let out = self.eval_inner(alphas, memo);
        let fp_after = self.footprint_bytes();
        if fp_after > fp_before {
            self.realloc_bytes += (fp_after - fp_before) as u64;
            self.reallocs += 1;
        }
        out
    }

    fn eval_inner(&mut self, alphas: impl IntoIterator<Item = f64>, memo: &PmfMemo) -> f64 {
        self.alphas.clear();
        self.alphas.extend(alphas);
        let m = self.alphas.len();
        self.cells += m as u64;
        if m <= 1 {
            return 0.0;
        }
        // Same order as the cell gather, so the total matches the
        // pre-batching path bit for bit.
        let total: f64 = self.alphas.iter().sum();
        self.index.clear();
        self.uniq.clear();
        for i in 0..m {
            let a = self.alphas[i];
            match self.index.entry(a.to_bits()) {
                Entry::Occupied(e) => self.uniq[*e.get() as usize].1 += 1,
                Entry::Vacant(e) => {
                    e.insert(self.uniq.len() as u32);
                    self.uniq.push((a, 1));
                }
            }
        }
        self.dedup_hits += (m - self.uniq.len()) as u64;
        let mut acc = 0.0;
        for g in 0..self.uniq.len() {
            let (a, mult) = self.uniq[g];
            let e = self.group_error(a, total, m, memo);
            #[cfg(feature = "check-invariants")]
            {
                let bound = crate::expression::lemma_upper_bound(a, (total - a).max(0.0), m);
                assert!(
                    e >= -1e-12 && e <= bound + 1e-9 * (1.0 + bound),
                    "Lemma III.1 violated: E_e = {e} outside [0, {bound}] at a={a}, total={total}, m={m}"
                );
            }
            acc += e * mult as f64;
        }
        acc
    }

    /// L1-then-memo table lookup. Only tables the memo handed back are
    /// retained (admission stays the memo's call, so the memory bound
    /// holds); refused rates return `None` and use the scratch path.
    fn cached_table(&mut self, rate: f64, memo: &PmfMemo) -> Option<Arc<PmfTable>> {
        let bits = rate.to_bits();
        if let Some(t) = self.l1.get(&bits) {
            return Some(Arc::clone(t));
        }
        let fetched = memo.get_or_build(rate)?;
        if self.l1.len() >= L1_MAX_ENTRIES {
            self.l1.clear();
        }
        self.l1.insert(bits, Arc::clone(&fetched));
        Some(fetched)
    }

    /// One distinct rate's `E_e(a, total − a, m)`, from memoised tables
    /// when admitted, scratch refills otherwise.
    fn group_error(&mut self, a: f64, total: f64, m: usize, memo: &PmfMemo) -> f64 {
        self.kernel_evals += 1;
        let b = (total - a).max(0.0);
        let tb_hit = self.cached_table(b, memo);
        if tb_hit.is_none() {
            self.tb.fill(b);
        }
        if a == 0.0 {
            // a = 0 fast path: Pois(0) is a point mass at zero, so the
            // windowed series collapses to its first term and the general
            // loop returns exactly the windowed first moment of Pois(b)
            // over m — the remaining terms contribute ±0.0. Bit-identical
            // to the general evaluation, without building the a-table.
            let tb: &PmfTable = match tb_hit.as_deref() {
                Some(t) => t,
                None => &self.tb,
            };
            return tb.mom_total / m as f64;
        }
        let ta_hit = self.cached_table(a, memo);
        if ta_hit.is_none() {
            self.ta.fill(a);
        }
        let tb: &PmfTable = match tb_hit.as_deref() {
            Some(t) => t,
            None => &self.tb,
        };
        let ta: &PmfTable = match ta_hit.as_deref() {
            Some(t) => t,
            None => &self.ta,
        };
        eval_tables(ta, tb, m)
    }

    /// HGrid cells processed so far.
    pub fn cells(&self) -> u64 {
        self.cells
    }

    /// Cells served by another cell's group (dedup savings).
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Kernel (group) evaluations performed.
    pub fn kernel_evals(&self) -> u64 {
        self.kernel_evals
    }

    /// Bytes of buffer growth since creation (0 growth = the steady-state
    /// zero-allocation guarantee held).
    pub fn realloc_bytes(&self) -> u64 {
        self.realloc_bytes
    }

    /// MGrid evaluations that grew any buffer.
    pub fn reallocs(&self) -> u64 {
        self.reallocs
    }

    /// Heap bytes currently held across every buffer.
    pub fn footprint_bytes(&self) -> usize {
        self.alphas.capacity() * std::mem::size_of::<f64>()
            + self.uniq.capacity() * std::mem::size_of::<(f64, u32)>()
            + self.index.capacity() * std::mem::size_of::<(u64, u32)>()
            + self.l1.capacity() * std::mem::size_of::<(u64, Arc<PmfTable>)>()
            + self.ta.bytes()
            + self.tb.bytes()
    }
}

impl Drop for ExprWorkspace {
    fn drop(&mut self) {
        if self.cells > 0 {
            obs::counter!("expr.cell_evals").add(self.cells);
        }
        if self.dedup_hits > 0 {
            obs::counter!("expr.dedup_hits").add(self.dedup_hits);
        }
        if self.kernel_evals > 0 {
            obs::counter!("expr.evals").add(self.kernel_evals);
        }
        if self.realloc_bytes > 0 {
            obs::counter!("expr.workspace_bytes").add(self.realloc_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::expression_error_windowed;

    const CASES: &[(f64, f64, usize)] = &[
        (1.0, 3.0, 4),
        (0.5, 0.5, 2),
        (2.0, 10.0, 9),
        (5.0, 0.0, 4),
        (3.3, 7.7, 16),
        (80.0, 7_920.0, 100),
        (0.25, 1234.5, 64),
    ];

    #[test]
    fn shard_wait_counters_cover_every_shard_and_attribute_blocks() {
        let counters = shard_wait_counters();
        assert_eq!(counters.len(), MEMO_SHARDS);
        let memo = PmfMemo::default();
        let idx = PmfMemo::shard_index(1.5f64.to_bits());
        let aggregate_before = obs::metrics::counter("pmf_memo.lock_waits").get();
        let shard_before = counters[idx].get();
        let other = counters[(idx + 1) % MEMO_SHARDS].get();
        note_lock_wait(&memo.lock_waits, idx);
        assert_eq!(counters[idx].get(), shard_before + 1);
        assert_eq!(counters[(idx + 1) % MEMO_SHARDS].get(), other);
        assert_eq!(
            obs::metrics::counter("pmf_memo.lock_waits").get(),
            aggregate_before + 1
        );
        assert_eq!(memo.lock_waits(), 1, "instance counter tracks its memo");
    }

    #[test]
    fn eval_tables_matches_windowed_bitwise() {
        for &(a, b, m) in CASES {
            let ta = PmfTable::build(a);
            let tb = PmfTable::build(b);
            let batched = eval_tables(&ta, &tb, m);
            let direct = expression_error_windowed(a, b, m);
            assert_eq!(
                batched.to_bits(),
                direct.to_bits(),
                "bit drift at a={a}, b={b}, m={m}: {batched} vs {direct}"
            );
        }
    }

    #[test]
    fn zero_rate_fast_path_is_bitwise_identical() {
        for &(b, m) in &[(12.0, 6usize), (0.0, 4), (5_000.0, 256), (0.4, 2)] {
            let tb = PmfTable::build(b);
            let fast = tb.mom_total / m as f64;
            let direct = expression_error_windowed(0.0, b, m);
            assert_eq!(
                fast.to_bits(),
                direct.to_bits(),
                "a=0 fast path drift at b={b}, m={m}: {fast} vs {direct}"
            );
        }
    }

    #[test]
    fn table_refill_matches_fresh_build() {
        let mut scratch = PmfTable::build(9_999.0); // warm with a big window
        for &rate in &[0.0, 0.2, 3.0, 740.0, 5_000.0] {
            scratch.fill(rate);
            let fresh = PmfTable::build(rate);
            assert_eq!(scratch.pmf, fresh.pmf, "pmf drift at rate {rate}");
            assert_eq!(scratch.ckpt, fresh.ckpt, "stale checkpoints at rate {rate}");
            assert_eq!((scratch.lo, scratch.hi), (fresh.lo, fresh.hi));
            assert_eq!(scratch.cum_total.to_bits(), fresh.cum_total.to_bits());
            assert_eq!(scratch.mom_total.to_bits(), fresh.mom_total.to_bits());
        }
    }

    #[test]
    fn checkpoints_are_exact_fold_states() {
        // A window spanning many checkpoint strides: every stored
        // checkpoint must be the canonical 4-lane fold's state at its
        // stride boundary, bit for bit — that is what lets `eval_tables`
        // jump the running accumulator without changing a ulp. The
        // reference here is a plain scalar transcription of the canonical
        // association: lane `j mod 4`, tree-folded `(l₀+l₁)+(l₂+l₃)` at
        // each boundary.
        let t = PmfTable::build(740.0);
        assert_eq!(t.ckpt.len(), t.pmf.len() / CKPT_STRIDE + 1);
        let mut base_c = 0.0f64;
        let mut base_s = 0.0f64;
        let mut cl = [0.0f64; 4];
        let mut sl = [0.0f64; 4];
        for (i, &p) in t.pmf.iter().enumerate() {
            if i % CKPT_STRIDE == 0 {
                let (cq, sq) = t.ckpt[i / CKPT_STRIDE];
                assert_eq!(cq.to_bits(), base_c.to_bits(), "cum drift at idx {i}");
                assert_eq!(sq.to_bits(), base_s.to_bits(), "mom drift at idx {i}");
            }
            cl[i % 4] += p;
            sl[i % 4] += (t.lo + i as u64) as f64 * p;
            if (i + 1) % CKPT_STRIDE == 0 {
                base_c += (cl[0] + cl[1]) + (cl[2] + cl[3]);
                base_s += (sl[0] + sl[1]) + (sl[2] + sl[3]);
                cl = [0.0; 4];
                sl = [0.0; 4];
            }
        }
        base_c += (cl[0] + cl[1]) + (cl[2] + cl[3]);
        base_s += (sl[0] + sl[1]) + (sl[2] + sl[3]);
        assert_eq!(t.cum_total.to_bits(), base_c.to_bits());
        assert_eq!(t.mom_total.to_bits(), base_s.to_bits());
    }

    #[test]
    fn table_backends_are_bitwise_identical() {
        // Fill + fold + evaluation must not depend on which backend ran:
        // the AVX2 instantiation and the scalar emulation share the
        // canonical lane association. (Without AVX2 both passes run the
        // scalar body and the comparison is trivially true.)
        let prev = crate::simd::simd_enabled();
        for &(a, b, m) in CASES {
            crate::simd::set_simd_enabled(false);
            let (sc, ss, se) = {
                let ta = PmfTable::build(a);
                let tb = PmfTable::build(b);
                (tb.cum_total, tb.mom_total, eval_tables(&ta, &tb, m))
            };
            crate::simd::set_simd_enabled(true);
            let (vc, vs, ve) = {
                let ta = PmfTable::build(a);
                let tb = PmfTable::build(b);
                (tb.cum_total, tb.mom_total, eval_tables(&ta, &tb, m))
            };
            crate::simd::set_simd_enabled(prev);
            assert_eq!(sc.to_bits(), vc.to_bits(), "cum_total drift at b={b}");
            assert_eq!(ss.to_bits(), vs.to_bits(), "mom_total drift at b={b}");
            assert_eq!(se.to_bits(), ve.to_bits(), "E_e drift at ({a}, {b}, {m})");
        }
    }

    #[test]
    fn workspace_matches_per_cell_loop() {
        // Repeated values: the multiplicity-weighted group sum must agree
        // with the cell-order loop to reassociation tolerance, and exactly
        // when all values are distinct (group order = cell order).
        let memo = PmfMemo::default();
        let mut ws = ExprWorkspace::new();
        let repeated = [0.0, 2.0, 0.0, 5.5, 2.0, 0.0, 1.25, 5.5];
        let m = repeated.len();
        let total: f64 = repeated.iter().sum();
        let per_cell: f64 = repeated
            .iter()
            .map(|&a| expression_error_windowed(a, (total - a).max(0.0), m))
            .sum();
        let batched = ws.mgrid_error(&repeated, &memo).unwrap();
        assert!(
            (batched - per_cell).abs() <= 1e-12 * per_cell.max(1.0),
            "batched {batched} vs per-cell {per_cell}"
        );
        let distinct = [1.0, 2.0, 3.0, 4.0];
        let dtotal: f64 = distinct.iter().sum();
        let d_per_cell: f64 = distinct
            .iter()
            .map(|&a| expression_error_windowed(a, dtotal - a, 4))
            .sum();
        let d_batched = ws.mgrid_error(&distinct, &memo).unwrap();
        assert_eq!(d_batched.to_bits(), d_per_cell.to_bits());
    }

    #[test]
    fn workspace_dedup_and_cell_tallies() {
        let memo = PmfMemo::default();
        let mut ws = ExprWorkspace::new();
        ws.mgrid_error(&[0.0, 1.0, 0.0, 1.0, 2.0], &memo).unwrap();
        assert_eq!(ws.cells(), 5);
        assert_eq!(ws.kernel_evals(), 3, "three distinct rates");
        assert_eq!(ws.dedup_hits(), 2, "two cells rode along");
        ws.mgrid_error(&[7.0], &memo).unwrap();
        assert_eq!(ws.cells(), 6);
        assert_eq!(ws.kernel_evals(), 3, "m = 1 MGrids never hit the kernel");
    }

    #[test]
    fn workspace_steady_state_allocates_nothing() {
        let memo = PmfMemo::with_limits(0, 0); // force the scratch path
        let mut ws = ExprWorkspace::new();
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|r| (0..16).map(|c| ((r * 16 + c) % 5) as f64 * 0.4).collect())
            .collect();
        let first: Vec<f64> = rows
            .iter()
            .map(|row| ws.mgrid_error_trusted(row.iter().copied(), &memo))
            .collect();
        let warm_footprint = ws.footprint_bytes();
        let warm_reallocs = ws.reallocs();
        let warm_bytes = ws.realloc_bytes();
        // The steady-state pass: same field again, not one byte allocated.
        let second: Vec<f64> = rows
            .iter()
            .map(|row| ws.mgrid_error_trusted(row.iter().copied(), &memo))
            .collect();
        assert_eq!(
            ws.reallocs(),
            warm_reallocs,
            "steady-state sweep grew a buffer"
        );
        assert_eq!(ws.realloc_bytes(), warm_bytes);
        assert_eq!(ws.footprint_bytes(), warm_footprint);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.to_bits(), b.to_bits(), "reuse changed a value");
        }
    }

    #[test]
    fn memo_hits_are_bit_identical_to_scratch() {
        let memo = PmfMemo::default();
        let miss = memo.get_or_build(6.25).expect("admitted");
        let hit = memo.get_or_build(6.25).expect("cached");
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 1);
        let fresh = PmfTable::build(6.25);
        for t in [&miss, &hit] {
            assert_eq!(t.pmf, fresh.pmf);
            assert_eq!(t.cum_total.to_bits(), fresh.cum_total.to_bits());
            assert_eq!(t.mom_total.to_bits(), fresh.mom_total.to_bits());
        }
    }

    #[test]
    fn memo_respects_both_limits() {
        // Entry cap.
        let capped = PmfMemo::with_limits(2, usize::MAX);
        assert!(capped.get_or_build(1.0).is_some());
        assert!(capped.get_or_build(2.0).is_some());
        assert!(capped.get_or_build(3.0).is_none(), "entry cap ignored");
        assert_eq!(capped.entries(), 2);
        // Retained-f64 budget: a huge-window rate must be refused while
        // small rates still fit.
        let budgeted = PmfMemo::with_limits(usize::MAX, 300);
        assert!(budgeted.get_or_build(1.0).is_some(), "small window fits");
        assert!(
            budgeted.get_or_build(1.0e6).is_none(),
            "oversized window admitted past the budget"
        );
        assert!(budgeted.retained_f64s() <= 300);
        // Refused rates still evaluate correctly via scratch.
        let memo = PmfMemo::with_limits(0, 0);
        let mut ws = ExprWorkspace::new();
        let open = PmfMemo::default();
        let mut ws2 = ExprWorkspace::new();
        let alphas = [3.0, 0.0, 1.5, 3.0];
        let scratch = ws.mgrid_error(&alphas, &memo).unwrap();
        let memoised = ws2.mgrid_error(&alphas, &open).unwrap();
        assert_eq!(scratch.to_bits(), memoised.to_bits());
    }

    #[test]
    fn dedup_groups_conserve_weight() {
        let alphas = [0.0, 1.0, 0.0, 2.5, 1.0, 0.0];
        let groups = dedup_groups(&alphas);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], (0.0, 3));
        assert_eq!(groups[1], (1.0, 2));
        assert_eq!(groups[2], (2.5, 1));
        let total: u32 = groups.iter().map(|&(_, mult)| mult).sum();
        assert_eq!(total as usize, alphas.len());
        assert!(dedup_groups(&[]).is_empty());
    }

    #[test]
    fn invalid_rates_are_data_errors() {
        let memo = PmfMemo::default();
        let mut ws = ExprWorkspace::new();
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let err = ws.mgrid_error(&[1.0, bad], &memo).unwrap_err();
            match err {
                CoreError::Data(msg) => {
                    assert!(msg.contains("non-finite or negative"), "{msg}")
                }
                other => panic!("expected Data error, got {other:?}"),
            }
        }
    }
}
