//! Model-error measurement, and the bridge into the OGSS search.
//!
//! Eq. 20 of the paper: `Σ_i Σ_j E_m(i,j) = Σ_i E|λ̂_i − λ_i| ≈ n·MAE(f)`.
//! [`total_model_error`] measures exactly that (the slot-averaged MGrid
//! L1 bias); [`CityModelError`] packages "sample a training series at side
//! `s`, fit a fresh predictor, evaluate on validation slots" as a
//! [`ModelErrorFn`], the model leg of Algorithm 3.

use crate::error::PredictError;
use crate::features::FeatureConfig;
use crate::models::Predictor;
use gridtuner_core::error::CoreError;
use gridtuner_core::upper_bound::{ModelErrorFn, ModelErrorSource};
use gridtuner_datagen::{City, DataSplit};
use gridtuner_spatial::{CountSeries, GridSpec, SlotClock, SlotId};
use rand::{rngs::StdRng, SeedableRng};

/// All global slots belonging to days `[days.0, days.1)`.
pub fn slots_in_days(clock: &SlotClock, days: (u32, u32)) -> Vec<SlotId> {
    (days.0..days.1)
        .flat_map(|d| (0..clock.slots_per_day()).map(move |s| (d, s)))
        .map(|(d, s)| clock.slot_at(d, s))
        .collect()
}

/// Mean over `eval_slots` of `Σ_i |λ̂_i − λ_i|` — the total model error of
/// Eq. 20. Slots beyond the series horizon are skipped; panics if none
/// remain (see [`try_total_model_error`] for the typed-error variant).
pub fn total_model_error<P: Predictor + ?Sized>(
    model: &mut P,
    series: &CountSeries,
    clock: &SlotClock,
    eval_slots: &[SlotId],
) -> f64 {
    match try_total_model_error(model, series, clock, eval_slots) {
        Ok(e) => e,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`total_model_error`]: an unfitted model, lattice mismatch or
/// empty evaluable set is a typed error instead of a panic.
pub fn try_total_model_error<P: Predictor + ?Sized>(
    model: &mut P,
    series: &CountSeries,
    clock: &SlotClock,
    eval_slots: &[SlotId],
) -> Result<f64, PredictError> {
    let mut acc = 0.0;
    let mut used = 0usize;
    for &slot in eval_slots {
        if slot.index() >= series.n_slots() {
            continue;
        }
        let pred = model.try_predict(series, clock, slot)?;
        let actual = series.slot_matrix(slot);
        acc += pred.l1_distance(&actual)?;
        used += 1;
    }
    if used == 0 {
        return Err(PredictError::NoEvaluableSlots);
    }
    Ok(acc / used as f64)
}

/// The model leg of Algorithm 3 for a synthetic [`City`]: each call samples
/// a fresh count series at the requested MGrid side, fits a fresh predictor
/// from the factory, and reports the validation model error. Deterministic
/// per (seed, side).
pub struct CityModelError<F> {
    city: City,
    split: DataSplit,
    factory: F,
    seed: u64,
    /// Evaluate on at most this many validation slots (0 = all).
    max_eval_slots: usize,
}

impl<F: FnMut() -> Box<dyn Predictor>> CityModelError<F> {
    /// Creates the oracle.
    pub fn new(city: City, split: DataSplit, seed: u64, factory: F) -> Self {
        CityModelError {
            city,
            split,
            factory,
            seed,
            max_eval_slots: 0,
        }
    }

    /// Caps the number of validation slots (cheaper searches).
    pub fn with_max_eval_slots(mut self, n: usize) -> Self {
        self.max_eval_slots = n;
        self
    }

    /// Fits a predictor at `side` and returns `(model error, series)` —
    /// useful when the caller also needs the sampled series. Panicking
    /// convenience over [`try_measure`](Self::try_measure).
    pub fn measure(&mut self, side: u32) -> (f64, CountSeries) {
        match self.try_measure(side) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`measure`](Self::measure): evaluation failures surface as
    /// typed errors instead of panics.
    pub fn try_measure(&mut self, side: u32) -> Result<(f64, CountSeries), PredictError> {
        let _span = gridtuner_obs::span!("model_error", side = side);
        let clock = *self.city.clock();
        let spec = GridSpec::new(side);
        let horizon = (self.split.val_days.1 * clock.slots_per_day()) as usize;
        let mut rng = StdRng::seed_from_u64(self.seed ^ (side as u64) << 32);
        let series = self.city.sample_count_series(spec, horizon, &mut rng);
        let mut model = (self.factory)();
        let train_end = clock.slot_at(self.split.train_days.1, 0);
        model.fit(&series, &clock, train_end);
        // Evaluate only slots with a full feature window for the richest
        // model we ship (closeness 8 ⇒ the first day of validation always
        // qualifies).
        let mut slots = slots_in_days(&clock, self.split.val_days);
        let min_slot = FeatureConfig {
            closeness: 8,
            period_days: 3,
            trend_weeks: 2,
        }
        .first_usable_slot(&clock);
        slots.retain(|s| s.0 >= min_slot);
        if self.max_eval_slots > 0 && slots.len() > self.max_eval_slots {
            slots.truncate(self.max_eval_slots);
        }
        let err = try_total_model_error(model.as_mut(), &series, &clock, &slots)?;
        Ok((err, series))
    }
}

impl<F: FnMut() -> Box<dyn Predictor>> ModelErrorFn for CityModelError<F> {
    fn total_model_error(&mut self, mgrid_side: u32) -> f64 {
        self.measure(mgrid_side).0
    }
}

/// The session-API face of the city model oracle: same measurement, typed
/// failures. The series is re-sampled per (seed, side) from the city's
/// generator — not from the session's ingested log — so a data delta does
/// not invalidate memoised values (`data_dependent` stays false).
impl<F: FnMut() -> Box<dyn Predictor>> ModelErrorSource for CityModelError<F> {
    fn model_error(&mut self, mgrid_side: u32) -> Result<f64, CoreError> {
        self.try_measure(mgrid_side)
            .map(|(e, _)| e)
            .map_err(|e| CoreError::Model {
                side: mgrid_side,
                message: e.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{HistoricalAverage, Mlp, TrainConfig};

    fn tiny_city() -> City {
        City::xian().scaled(0.01)
    }

    fn tiny_split() -> DataSplit {
        DataSplit {
            train_days: (0, 15),
            val_days: (15, 17),
            test_day: 17,
        }
    }

    #[test]
    fn slots_in_days_enumerates_all() {
        let clock = SlotClock::default();
        let slots = slots_in_days(&clock, (2, 4));
        assert_eq!(slots.len(), 96);
        assert_eq!(slots[0], clock.slot_at(2, 0));
        assert_eq!(*slots.last().unwrap(), clock.slot_at(3, 47));
    }

    #[test]
    fn total_model_error_matches_manual_for_ha() {
        let clock = SlotClock::default();
        // Deterministic series: constant 3 per cell on weekdays at all
        // slots; HA should predict it perfectly on a weekday.
        let mut series = CountSeries::zeros(2, 48 * 8);
        for t in 0..48 * 8 {
            let slot = SlotId(t);
            if clock.is_weekday(slot) {
                for v in series.slot_mut(slot) {
                    *v = 3.0;
                }
            }
        }
        let mut ha = HistoricalAverage::new();
        ha.fit(&series, &clock, SlotId(48 * 7));
        let err = total_model_error(&mut ha, &series, &clock, &[clock.slot_at(7, 10)]);
        assert!(err.abs() < 1e-9, "err = {err}");
    }

    #[test]
    fn model_error_grows_with_n_for_ha() {
        // The paper's Fig. 4 trend: finer grids → larger total model error.
        let city = tiny_city();
        let mk = || Box::new(HistoricalAverage::new()) as Box<dyn Predictor>;
        let mut oracle = CityModelError::new(city, tiny_split(), 7, mk).with_max_eval_slots(24);
        let coarse = ModelErrorFn::total_model_error(&mut oracle, 2);
        let mid = ModelErrorFn::total_model_error(&mut oracle, 8);
        let fine = ModelErrorFn::total_model_error(&mut oracle, 16);
        assert!(
            coarse < mid && mid < fine,
            "model error not increasing: {coarse} {mid} {fine}"
        );
    }

    #[test]
    fn trained_mlp_beats_zero_prediction() {
        let city = tiny_city();
        let clock = *city.clock();
        let mut rng = StdRng::seed_from_u64(3);
        let series = city.sample_count_series(GridSpec::new(4), 48 * 17, &mut rng);
        let cfg = TrainConfig {
            epochs: 6,
            max_samples: 200,
            ..TrainConfig::default()
        };
        let mut mlp = Mlp::new(cfg);
        mlp.fit(&series, &clock, clock.slot_at(15, 0));
        let slots = slots_in_days(&clock, (15, 16));
        let err = total_model_error(&mut mlp, &series, &clock, &slots);
        // Zero prediction's error = mean total counts per slot.
        let zero_err: f64 =
            slots.iter().map(|&s| series.slot_total(s)).sum::<f64>() / slots.len() as f64;
        assert!(
            err < 0.8 * zero_err,
            "MLP err {err} vs zero-predictor {zero_err}"
        );
    }

    #[test]
    fn measure_is_deterministic_per_seed() {
        let mk = || Box::new(HistoricalAverage::new()) as Box<dyn Predictor>;
        let city = tiny_city();
        let mut a = CityModelError::new(city.clone(), tiny_split(), 42, mk).with_max_eval_slots(8);
        let mk2 = || Box::new(HistoricalAverage::new()) as Box<dyn Predictor>;
        let mut b = CityModelError::new(city, tiny_split(), 42, mk2).with_max_eval_slots(8);
        assert_eq!(a.measure(4).0, b.measure(4).0);
    }
}
