//! Naive forecasting baselines.
//!
//! Every demand-forecasting evaluation needs the two classic floors:
//! **persistence** (tomorrow = right now) and **seasonal naive**
//! (tomorrow = the same slot yesterday/last week). They cost nothing to
//! "train" and calibrate how much the learned models actually add.

use crate::error::PredictError;
use crate::models::Predictor;
use gridtuner_spatial::{CountMatrix, CountSeries, SlotClock, SlotId};

/// Predicts slot `t` as a copy of slot `t − 1` (zeros at the very start).
#[derive(Debug, Clone, Copy, Default)]
pub struct Persistence;

impl Persistence {
    /// A persistence forecaster.
    pub fn new() -> Self {
        Persistence
    }
}

impl Predictor for Persistence {
    fn name(&self) -> &'static str {
        "persistence"
    }

    fn fit(&mut self, _series: &CountSeries, _clock: &SlotClock, _train_end: SlotId) {}

    fn try_predict(
        &mut self,
        series: &CountSeries,
        _clock: &SlotClock,
        slot: SlotId,
    ) -> Result<CountMatrix, PredictError> {
        Ok(if slot.0 == 0 {
            CountMatrix::zeros(series.side())
        } else {
            series.slot_matrix(SlotId(slot.0 - 1))
        })
    }
}

/// Predicts slot `t` as a copy of the same slot one season earlier.
#[derive(Debug, Clone, Copy)]
pub struct SeasonalNaive {
    /// Season length in slots (e.g. 48 = daily with 30-minute slots).
    pub season_slots: u32,
}

impl SeasonalNaive {
    /// Daily seasonality under the given clock.
    pub fn daily(clock: &SlotClock) -> Self {
        SeasonalNaive {
            season_slots: clock.slots_per_day(),
        }
    }

    /// Weekly seasonality under the given clock.
    pub fn weekly(clock: &SlotClock) -> Self {
        SeasonalNaive {
            season_slots: clock.slots_per_week(),
        }
    }
}

impl Predictor for SeasonalNaive {
    fn name(&self) -> &'static str {
        "seasonal-naive"
    }

    fn fit(&mut self, _series: &CountSeries, _clock: &SlotClock, _train_end: SlotId) {}

    fn try_predict(
        &mut self,
        series: &CountSeries,
        _clock: &SlotClock,
        slot: SlotId,
    ) -> Result<CountMatrix, PredictError> {
        Ok(if slot.0 < self.season_slots {
            CountMatrix::zeros(series.side())
        } else {
            series.slot_matrix(SlotId(slot.0 - self.season_slots))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::total_model_error;
    use crate::models::HistoricalAverage;

    fn series_with_daily_pattern() -> (CountSeries, SlotClock) {
        let clock = SlotClock::default();
        let mut s = CountSeries::zeros(2, 48 * 8);
        for t in 0..48 * 8u32 {
            let sod = clock.slot_of_day(SlotId(t)) as f64;
            for (i, v) in s.slot_mut(SlotId(t)).iter_mut().enumerate() {
                *v = sod + i as f64;
            }
        }
        (s, clock)
    }

    #[test]
    fn persistence_copies_previous_slot() {
        let (series, clock) = series_with_daily_pattern();
        let mut p = Persistence::new();
        p.fit(&series, &clock, SlotId(48));
        let pred = p.predict(&series, &clock, SlotId(100));
        assert_eq!(pred.as_slice(), series.slot(SlotId(99)));
        // Slot 0 has no history.
        assert_eq!(p.predict(&series, &clock, SlotId(0)).total(), 0.0);
    }

    #[test]
    fn seasonal_naive_is_exact_on_perfectly_periodic_data() {
        let (series, clock) = series_with_daily_pattern();
        let mut daily = SeasonalNaive::daily(&clock);
        let err = total_model_error(
            &mut daily,
            &series,
            &clock,
            &[SlotId(48 * 7 + 3), SlotId(48 * 7 + 30)],
        );
        assert_eq!(err, 0.0, "daily-periodic data must be predicted exactly");
    }

    #[test]
    fn seasonal_naive_beats_persistence_on_periodic_data() {
        let (series, clock) = series_with_daily_pattern();
        let slots: Vec<SlotId> = (0..10).map(|k| SlotId(48 * 7 + k * 4 + 1)).collect();
        let p_err = total_model_error(&mut Persistence::new(), &series, &clock, &slots);
        let s_err = total_model_error(&mut SeasonalNaive::daily(&clock), &series, &clock, &slots);
        assert!(s_err < p_err, "seasonal {s_err} vs persistence {p_err}");
    }

    #[test]
    fn baselines_floor_the_historical_average_on_noiseless_data() {
        // On deterministic periodic data all three are exact after a week.
        let (series, clock) = series_with_daily_pattern();
        let mut ha = HistoricalAverage::new();
        ha.fit(&series, &clock, SlotId(48 * 7));
        let slot = SlotId(48 * 7 + 9);
        let ha_err = ha
            .predict(&series, &clock, slot)
            .l1_distance(&series.slot_matrix(slot))
            .unwrap();
        assert!(ha_err < 1e-9);
    }

    #[test]
    fn weekly_season_length() {
        let clock = SlotClock::default();
        assert_eq!(SeasonalNaive::weekly(&clock).season_slots, 336);
    }
}
