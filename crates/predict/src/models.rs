//! The predictor ladder: historical average, MLP, DeepST-like,
//! DMVST-like.
//!
//! All neural predictors share one training core ([`NnCore`]): build
//! closeness/period/trend samples, normalize by the training maximum,
//! minimize Huber loss with Adam, and clamp predictions to non-negative
//! counts. They differ in features and architecture, forming the paper's
//! capacity ladder (Sec. V-B): the MLP sees only the flattened closeness
//! window; DeepST-like adds period channels and convolutional structure
//! with a residual block; DMVST-like adds trend channels and a second
//! residual block ("multi-view": more temporal views + deeper spatial
//! view). Widths are CPU-sized; the paper's exact MLP widths are available
//! via [`MlpConfig::paper_sized`].

use crate::error::PredictError;
use crate::features::{build_samples, features_for, FeatureConfig};
use gridtuner_nn::{
    huber_loss, Adam, Conv2d, Dense, Flatten, Layer, Optimizer, ReLU, Residual, Sequential,
};
use gridtuner_spatial::{CountMatrix, CountSeries, SlotClock, SlotId};
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

/// A spatiotemporal predictor over gridded count series.
pub trait Predictor {
    /// Model name (used in experiment tables).
    fn name(&self) -> &'static str;
    /// Fits on slots `[0, train_end)` of the series.
    fn fit(&mut self, series: &CountSeries, clock: &SlotClock, train_end: SlotId);
    /// Predicts the counts of `slot` using only strictly earlier history,
    /// or a typed failure (unfitted model, lattice mismatch).
    fn try_predict(
        &mut self,
        series: &CountSeries,
        clock: &SlotClock,
        slot: SlotId,
    ) -> Result<CountMatrix, PredictError>;
    /// Panicking convenience over [`try_predict`](Predictor::try_predict)
    /// for harnesses and experiments where a failure is a programming
    /// error. Library paths (the engine's sessions) use `try_predict`.
    fn predict(&mut self, series: &CountSeries, clock: &SlotClock, slot: SlotId) -> CountMatrix {
        match self.try_predict(series, clock, slot) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Training hyper-parameters shared by the neural predictors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Passes over the (subsampled) training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Cap on training samples (random subsample above this).
    pub max_samples: usize,
    /// RNG seed for init, shuffling and subsampling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 6,
            lr: 1e-3,
            batch_size: 16,
            max_samples: 800,
            seed: 0x9d17,
        }
    }
}

// ---------------------------------------------------------------------------
// Historical average
// ---------------------------------------------------------------------------

/// Per-(cell, slot-of-day) historical mean, with separate weekday and
/// weekend tables. The zero-parameter baseline, and the cheap stand-in
/// model for search-algorithm experiments.
#[derive(Debug, Clone, Default)]
pub struct HistoricalAverage {
    side: u32,
    // [is_weekend][slot_of_day][cell]
    tables: Vec<Vec<Vec<f64>>>,
}

impl HistoricalAverage {
    /// An unfitted historical-average model.
    pub fn new() -> Self {
        HistoricalAverage::default()
    }
}

impl Predictor for HistoricalAverage {
    fn name(&self) -> &'static str {
        "historical-average"
    }

    fn fit(&mut self, series: &CountSeries, clock: &SlotClock, train_end: SlotId) {
        let spd = clock.slots_per_day() as usize;
        let cells = series.spec().n_cells();
        self.side = series.side();
        let mut sums = vec![vec![vec![0.0f64; cells]; spd]; 2];
        let mut counts = vec![vec![0usize; spd]; 2];
        let end = (train_end.0 as usize).min(series.n_slots());
        for t in 0..end {
            let slot = SlotId(t as u32);
            let wk = usize::from(!clock.is_weekday(slot));
            let sod = clock.slot_of_day(slot) as usize;
            counts[wk][sod] += 1;
            for (acc, v) in sums[wk][sod].iter_mut().zip(series.slot(slot)) {
                *acc += v;
            }
        }
        for wk in 0..2 {
            for sod in 0..spd {
                let c = counts[wk][sod];
                if c > 0 {
                    for v in &mut sums[wk][sod] {
                        *v /= c as f64;
                    }
                } else if counts[1 - wk][sod] > 0 {
                    // No days of this kind seen: borrow the other table.
                    sums[wk][sod] = sums[1 - wk][sod].clone();
                    let c = counts[1 - wk][sod];
                    for v in &mut sums[wk][sod] {
                        *v /= c as f64;
                    }
                }
            }
        }
        self.tables = sums;
    }

    fn try_predict(
        &mut self,
        series: &CountSeries,
        clock: &SlotClock,
        slot: SlotId,
    ) -> Result<CountMatrix, PredictError> {
        if self.tables.is_empty() {
            return Err(PredictError::NotFitted);
        }
        if series.side() != self.side {
            return Err(PredictError::LatticeMismatch {
                expected: self.side,
                got: series.side(),
            });
        }
        let wk = usize::from(!clock.is_weekday(slot));
        let sod = clock.slot_of_day(slot) as usize;
        Ok(CountMatrix::from_vec(
            self.side,
            self.tables[wk][sod].clone(),
        )?)
    }
}

// ---------------------------------------------------------------------------
// Shared neural core
// ---------------------------------------------------------------------------

/// Everything common to the neural predictors: lazily-built network,
/// normalization, Adam/Huber training, clamped prediction, and a
/// persistence fallback for slots without a full feature window.
type NetBuilder = Box<dyn Fn(&mut StdRng, usize, usize) -> Sequential + Send>;

struct NnCore {
    feature_cfg: FeatureConfig,
    train_cfg: TrainConfig,
    build: NetBuilder,
    net: Option<Sequential>,
    norm: f32,
    side: u32,
}

impl NnCore {
    fn new(feature_cfg: FeatureConfig, train_cfg: TrainConfig, build: NetBuilder) -> Self {
        NnCore {
            feature_cfg,
            train_cfg,
            build,
            net: None,
            norm: 1.0,
            side: 0,
        }
    }

    fn fit(&mut self, series: &CountSeries, clock: &SlotClock, train_end: SlotId) {
        let _span = gridtuner_obs::span!(
            "train",
            side = series.side(),
            epochs = self.train_cfg.epochs
        );
        let mut rng = StdRng::seed_from_u64(self.train_cfg.seed);
        self.side = series.side();
        let mut samples = build_samples(series, clock, &self.feature_cfg, SlotId(0), train_end);
        assert!(
            !samples.is_empty(),
            "training range too short for the feature window"
        );
        samples.shuffle(&mut rng);
        samples.truncate(self.train_cfg.max_samples);
        // Normalize by the largest target/input magnitude seen in training.
        let mut norm = 1.0f32;
        for s in &samples {
            norm = norm.max(s.input.max_abs()).max(s.target.max_abs());
        }
        self.norm = norm;
        let side = series.side() as usize;
        let mut net = (self.build)(&mut rng, self.feature_cfg.channels(), side);
        let mut opt = Adam::new(self.train_cfg.lr);
        let bs = self.train_cfg.batch_size.max(1);
        for epoch in 0..self.train_cfg.epochs {
            let _epoch_span = gridtuner_obs::span!("train.epoch", epoch = epoch);
            gridtuner_obs::counter!("train.epochs").inc();
            samples.shuffle(&mut rng);
            for batch in samples.chunks(bs) {
                net.zero_grad();
                for s in batch {
                    let mut x = s.input.clone();
                    x.scale(1.0 / norm);
                    let mut t = s.target.clone();
                    t.scale(1.0 / norm);
                    let y = net.forward(&x);
                    let (_, g) = huber_loss(&y, &t, 1.0);
                    net.backward(&g);
                }
                for p in net.params_mut() {
                    p.grad.scale(1.0 / batch.len() as f32);
                }
                opt.step(&mut net.params_mut());
            }
        }
        self.net = Some(net);
    }

    fn try_predict(
        &mut self,
        series: &CountSeries,
        clock: &SlotClock,
        slot: SlotId,
    ) -> Result<CountMatrix, PredictError> {
        let net = self.net.as_mut().ok_or(PredictError::NotFitted)?;
        if series.side() != self.side {
            return Err(PredictError::LatticeMismatch {
                expected: self.side,
                got: series.side(),
            });
        }
        match features_for(series, clock, &self.feature_cfg, slot) {
            Some(mut x) => {
                x.scale(1.0 / self.norm);
                let y = net.forward(&x);
                let data: Vec<f64> = y
                    .as_slice()
                    .iter()
                    .map(|&v| (v * self.norm).max(0.0) as f64)
                    .collect();
                Ok(CountMatrix::from_vec(self.side, data)?)
            }
            None => {
                // Persistence fallback: repeat the previous slot (or zeros
                // at the very start of the series).
                if slot.0 == 0 {
                    Ok(CountMatrix::zeros(self.side))
                } else {
                    Ok(series.slot_matrix(SlotId(slot.0 - 1)))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// MLP
// ---------------------------------------------------------------------------

/// MLP sizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpConfig {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Closeness window length (paper: 8).
    pub closeness: usize,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: vec![256, 128],
            closeness: 4,
        }
    }
}

impl MlpConfig {
    /// The paper's exact sizing: six hidden layers 1024, 1024, 512, 512,
    /// 256, 256 on an 8-slot closeness window. CPU-expensive at large `n`.
    pub fn paper_sized() -> Self {
        MlpConfig {
            hidden: vec![1024, 1024, 512, 512, 256, 256],
            closeness: 8,
        }
    }
}

/// The paper's MLP: flattened closeness window through a dense ReLU stack.
pub struct Mlp {
    core: NnCore,
    hidden: Vec<usize>,
}

impl Mlp {
    /// A CPU-sized MLP (hidden 256-128, closeness 4).
    pub fn new(train_cfg: TrainConfig) -> Self {
        Mlp::with_config(MlpConfig::default(), train_cfg)
    }

    /// An MLP with explicit sizing.
    pub fn with_config(cfg: MlpConfig, train_cfg: TrainConfig) -> Self {
        let hidden = cfg.hidden.clone();
        let build: NetBuilder = Box::new(move |rng, channels, side| {
            let in_dim = channels * side * side;
            let out_dim = side * side;
            let mut layers: Vec<Box<dyn Layer>> = vec![Box::new(Flatten::new())];
            let mut prev = in_dim;
            for &h in &hidden {
                layers.push(Box::new(Dense::new(rng, prev, h)));
                layers.push(Box::new(ReLU::new()));
                prev = h;
            }
            layers.push(Box::new(Dense::new(rng, prev, out_dim)));
            Sequential::new(layers)
        });
        Mlp {
            core: NnCore::new(
                FeatureConfig::closeness_only(cfg.closeness),
                train_cfg,
                build,
            ),
            hidden: cfg.hidden,
        }
    }

    /// Hidden widths (for reporting).
    pub fn hidden(&self) -> &[usize] {
        &self.hidden
    }
}

impl Predictor for Mlp {
    fn name(&self) -> &'static str {
        "mlp"
    }

    fn fit(&mut self, series: &CountSeries, clock: &SlotClock, train_end: SlotId) {
        self.core.fit(series, clock, train_end);
    }

    fn try_predict(
        &mut self,
        series: &CountSeries,
        clock: &SlotClock,
        slot: SlotId,
    ) -> Result<CountMatrix, PredictError> {
        self.core.try_predict(series, clock, slot)
    }
}

// ---------------------------------------------------------------------------
// DeepST-like
// ---------------------------------------------------------------------------

fn deepst_builder(rng: &mut StdRng, channels: usize, _side: usize) -> Sequential {
    const CH: usize = 8;
    Sequential::new(vec![
        Box::new(Conv2d::new(rng, channels, CH, 3)),
        Box::new(ReLU::new()),
        Box::new(Residual::new(Sequential::new(vec![
            Box::new(Conv2d::new(rng, CH, CH, 3)),
            Box::new(ReLU::new()),
            Box::new(Conv2d::new(rng, CH, CH, 3)),
        ]))),
        Box::new(ReLU::new()),
        Box::new(Conv2d::new(rng, CH, 1, 3)),
        Box::new(Flatten::new()),
    ])
}

/// DeepST-like predictor: residual convolutional network over closeness +
/// period channel stacks.
pub struct DeepStLike {
    core: NnCore,
}

impl DeepStLike {
    /// Default feature window: closeness 4, period 3 days.
    pub fn new(train_cfg: TrainConfig) -> Self {
        DeepStLike {
            core: NnCore::new(
                FeatureConfig {
                    closeness: 4,
                    period_days: 3,
                    trend_weeks: 0,
                },
                train_cfg,
                Box::new(deepst_builder),
            ),
        }
    }
}

impl Predictor for DeepStLike {
    fn name(&self) -> &'static str {
        "deepst-like"
    }

    fn fit(&mut self, series: &CountSeries, clock: &SlotClock, train_end: SlotId) {
        self.core.fit(series, clock, train_end);
    }

    fn try_predict(
        &mut self,
        series: &CountSeries,
        clock: &SlotClock,
        slot: SlotId,
    ) -> Result<CountMatrix, PredictError> {
        self.core.try_predict(series, clock, slot)
    }
}

// ---------------------------------------------------------------------------
// DMVST-like
// ---------------------------------------------------------------------------

fn dmvst_builder(rng: &mut StdRng, channels: usize, _side: usize) -> Sequential {
    const CH: usize = 12;
    Sequential::new(vec![
        Box::new(Conv2d::new(rng, channels, CH, 3)),
        Box::new(ReLU::new()),
        Box::new(Residual::new(Sequential::new(vec![
            Box::new(Conv2d::new(rng, CH, CH, 3)),
            Box::new(ReLU::new()),
            Box::new(Conv2d::new(rng, CH, CH, 3)),
        ]))),
        Box::new(ReLU::new()),
        Box::new(Residual::new(Sequential::new(vec![
            Box::new(Conv2d::new(rng, CH, CH, 3)),
            Box::new(ReLU::new()),
            Box::new(Conv2d::new(rng, CH, CH, 3)),
        ]))),
        Box::new(ReLU::new()),
        Box::new(Conv2d::new(rng, CH, 1, 3)),
        Box::new(Flatten::new()),
    ])
}

/// DMVST-like predictor: the deepest model, with all three temporal views
/// (closeness + period + trend) and two residual blocks.
pub struct DmvstLike {
    core: NnCore,
}

impl DmvstLike {
    /// Default feature window: closeness 4, period 3 days, trend 2 weeks.
    pub fn new(train_cfg: TrainConfig) -> Self {
        DmvstLike {
            core: NnCore::new(
                FeatureConfig {
                    closeness: 4,
                    period_days: 3,
                    trend_weeks: 2,
                },
                train_cfg,
                Box::new(dmvst_builder),
            ),
        }
    }
}

impl Predictor for DmvstLike {
    fn name(&self) -> &'static str {
        "dmvst-like"
    }

    fn fit(&mut self, series: &CountSeries, clock: &SlotClock, train_end: SlotId) {
        self.core.fit(series, clock, train_end);
    }

    fn try_predict(
        &mut self,
        series: &CountSeries,
        clock: &SlotClock,
        slot: SlotId,
    ) -> Result<CountMatrix, PredictError> {
        self.core.try_predict(series, clock, slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn synthetic_series(side: u32, days: u32, seed: u64) -> (CountSeries, SlotClock) {
        // A deterministic daily pattern plus seeded noise.
        let clock = SlotClock::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = (days * clock.slots_per_day()) as usize;
        let mut s = CountSeries::zeros(side, n);
        for t in 0..n {
            let slot = SlotId(t as u32);
            let sod = clock.slot_of_day(slot) as f64;
            let level = 3.0 + 2.0 * (sod / 48.0 * std::f64::consts::TAU).sin();
            for (i, v) in s.slot_mut(slot).iter_mut().enumerate() {
                *v = (level + (i % 3) as f64 + rng.gen_range(0.0..0.5)).round();
            }
        }
        (s, clock)
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 2,
            max_samples: 120,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn historical_average_recovers_periodic_means() {
        let (series, clock) = synthetic_series(2, 10, 1);
        let mut ha = HistoricalAverage::new();
        ha.fit(&series, &clock, SlotId(48 * 10));
        let pred = ha.predict(&series, &clock, clock.slot_at(7, 20));
        // Noise is ≤ 0.5, so the mean must land within 1 of the level.
        let sod = 20.0f64;
        let level = 3.0 + 2.0 * (sod / 48.0 * std::f64::consts::TAU).sin();
        for (i, &v) in pred.as_slice().iter().enumerate() {
            assert!(
                (v - (level + (i % 3) as f64)).abs() < 1.0,
                "cell {i}: {v} vs level {level}"
            );
        }
    }

    #[test]
    fn historical_average_separates_weekends() {
        let clock = SlotClock::default();
        let mut series = CountSeries::zeros(1, 48 * 14);
        for t in 0..48 * 14 {
            let slot = SlotId(t);
            series.slot_mut(slot)[0] = if clock.is_weekday(slot) { 10.0 } else { 2.0 };
        }
        let mut ha = HistoricalAverage::new();
        ha.fit(&series, &clock, SlotId(48 * 14));
        let wd = ha.predict(&series, &clock, clock.slot_at(14, 5));
        let we = ha.predict(&series, &clock, clock.slot_at(19, 5)); // Saturday
        assert!((wd.as_slice()[0] - 10.0).abs() < 1e-9);
        assert!((we.as_slice()[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn historical_average_requires_fit() {
        let (series, clock) = synthetic_series(2, 2, 2);
        HistoricalAverage::new().predict(&series, &clock, SlotId(0));
    }

    #[test]
    fn mlp_predicts_nonnegative_counts_with_right_shape() {
        let (series, clock) = synthetic_series(4, 6, 3);
        let mut mlp = Mlp::new(quick_cfg());
        mlp.fit(&series, &clock, SlotId(48 * 5));
        let pred = mlp.predict(&series, &clock, clock.slot_at(5, 30));
        assert_eq!(pred.side(), 4);
        assert!(pred.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn mlp_training_improves_over_init() {
        let (series, clock) = synthetic_series(3, 8, 4);
        let eval_slot = clock.slot_at(7, 25);
        let actual = series.slot_matrix(eval_slot);
        // Zero-predictor baseline: error equals the slot's total count.
        let zero_err = actual.total();
        let mut mlp = Mlp::with_config(
            MlpConfig {
                hidden: vec![64, 32],
                closeness: 4,
            },
            TrainConfig {
                epochs: 8,
                max_samples: 300,
                ..TrainConfig::default()
            },
        );
        mlp.fit(&series, &clock, SlotId(48 * 7));
        let pred = mlp.predict(&series, &clock, eval_slot);
        let err = pred.l1_distance(&actual).unwrap();
        assert!(
            err < 0.5 * zero_err,
            "trained MLP err {err} should beat the zero predictor {zero_err}"
        );
    }

    #[test]
    fn deepst_like_smoke() {
        let (series, clock) = synthetic_series(4, 8, 5);
        let mut m = DeepStLike::new(quick_cfg());
        m.fit(&series, &clock, SlotId(48 * 7));
        let pred = m.predict(&series, &clock, clock.slot_at(7, 12));
        assert_eq!(pred.side(), 4);
        assert!(pred.as_slice().iter().all(|&v| v.is_finite() && v >= 0.0));
        assert_eq!(m.name(), "deepst-like");
    }

    #[test]
    fn dmvst_like_smoke_and_fallback() {
        let (series, clock) = synthetic_series(3, 16, 6);
        let mut m = DmvstLike::new(quick_cfg());
        m.fit(&series, &clock, SlotId(48 * 15));
        // A slot within the trend window → real prediction.
        let pred = m.predict(&series, &clock, clock.slot_at(15, 8));
        assert_eq!(pred.side(), 3);
        // A slot too early for the trend window → persistence fallback.
        let early = m.predict(&series, &clock, SlotId(5));
        assert_eq!(early.as_slice(), series.slot(SlotId(4)));
        assert_eq!(m.name(), "dmvst-like");
    }

    #[test]
    fn paper_sized_mlp_config() {
        let cfg = MlpConfig::paper_sized();
        assert_eq!(cfg.hidden, vec![1024, 1024, 512, 512, 256, 256]);
        assert_eq!(cfg.closeness, 8);
    }
}
