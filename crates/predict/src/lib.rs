//! Spatiotemporal prediction models.
//!
//! The paper evaluates three predictors of increasing capacity — MLP,
//! DeepST and DMVST-Net — plus implicitly the historical average. This
//! crate re-creates that ladder on top of [`gridtuner_nn`]:
//!
//! * [`models::HistoricalAverage`] — per-(cell, slot-of-day) mean; the
//!   cheap statistical baseline used by fast search experiments;
//! * [`models::Mlp`] — the paper's MLP: flattened closeness window through
//!   a dense stack (widths are configurable; the paper's 1024…256 sizing
//!   is available via [`models::MlpConfig::paper_sized`]);
//! * [`models::DeepStLike`] — DeepST's idea: closeness/period/trend
//!   channel stacks through a residual convolutional network;
//! * [`models::DmvstLike`] — DMVST-Net's idea: the spatial view plus a
//!   learned temporal weighting of the closeness window.
//!
//! [`features`] builds the closeness/period/trend tensors from a
//! [`gridtuner_spatial::CountSeries`]; [`eval`] measures the total model
//! error `Σ_i |λ̂_i − λ_i| ≈ n·MAE(f)` (Eq. 20) and adapts any predictor
//! to [`gridtuner_core::upper_bound::ModelErrorFn`] so it can drive the
//! OGSS search.

// Library code must not panic on fallible paths; tests are exempt. (The
// explicitly-documented panicking conveniences — `predict`, `measure`,
// `total_model_error` — route through `panic!` on a typed error, which the
// gate permits; sessions use the `try_*` forms.)
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod baselines;
pub mod error;
pub mod eval;
pub mod features;
pub mod models;
pub mod trainer;

pub use baselines::{Persistence, SeasonalNaive};
pub use error::PredictError;
pub use eval::{total_model_error, try_total_model_error, CityModelError};
pub use features::{FeatureConfig, Sample};
pub use models::{
    DeepStLike, DmvstLike, HistoricalAverage, Mlp, MlpConfig, Predictor, TrainConfig,
};
pub use trainer::{fit_until, FitConfig, FitReport};
