//! Feature construction: the closeness / period / trend windows.
//!
//! Following DeepST (and the paper's Sec. V-B): to predict slot `t`,
//! *closeness* stacks the `C` immediately preceding slots, *period* the
//! same slot-of-day on the `P` preceding days, and *trend* the same slot on
//! the `Q` preceding weeks. Each window becomes one channel of a
//! `[C+P+Q, side, side]` input tensor.

use gridtuner_nn::Tensor;
use gridtuner_spatial::{CountSeries, SlotClock, SlotId};

/// Window sizes for the three feature families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Number of immediately-preceding slots (paper: 8).
    pub closeness: usize,
    /// Number of preceding days at the same slot-of-day.
    pub period_days: usize,
    /// Number of preceding weeks at the same slot-of-week.
    pub trend_weeks: usize,
}

impl FeatureConfig {
    /// Closeness-only window (the MLP's input in the paper).
    pub fn closeness_only(c: usize) -> Self {
        FeatureConfig {
            closeness: c,
            period_days: 0,
            trend_weeks: 0,
        }
    }

    /// Total channel count.
    pub fn channels(&self) -> usize {
        self.closeness + self.period_days + self.trend_weeks
    }

    /// Earliest global slot with a full feature window.
    pub fn first_usable_slot(&self, clock: &SlotClock) -> u32 {
        let c = self.closeness as u32;
        let p = self.period_days as u32 * clock.slots_per_day();
        let q = self.trend_weeks as u32 * clock.slots_per_week();
        c.max(p).max(q)
    }
}

/// One training/evaluation sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The slot the target belongs to.
    pub slot: SlotId,
    /// `[channels, side, side]` feature tensor.
    pub input: Tensor,
    /// `[side²]` target counts.
    pub target: Tensor,
}

/// Builds the feature tensor for predicting `slot` from strictly earlier
/// history. Returns `None` when the window reaches before slot 0.
pub fn features_for(
    series: &CountSeries,
    clock: &SlotClock,
    cfg: &FeatureConfig,
    slot: SlotId,
) -> Option<Tensor> {
    if slot.0 < cfg.first_usable_slot(clock) {
        return None;
    }
    let side = series.side() as usize;
    let cells = side * side;
    let mut data = Vec::with_capacity(cfg.channels() * cells);
    for c in 1..=cfg.closeness {
        let s = SlotId(slot.0 - c as u32);
        data.extend(series.slot(s).iter().map(|&v| v as f32));
    }
    for d in 1..=cfg.period_days {
        let s = SlotId(slot.0 - d as u32 * clock.slots_per_day());
        data.extend(series.slot(s).iter().map(|&v| v as f32));
    }
    for w in 1..=cfg.trend_weeks {
        let s = SlotId(slot.0 - w as u32 * clock.slots_per_week());
        data.extend(series.slot(s).iter().map(|&v| v as f32));
    }
    Some(Tensor::from_vec(&[cfg.channels(), side, side], data))
}

/// Builds all samples with slots in `[from, to)` that have a full window.
pub fn build_samples(
    series: &CountSeries,
    clock: &SlotClock,
    cfg: &FeatureConfig,
    from: SlotId,
    to: SlotId,
) -> Vec<Sample> {
    assert!(cfg.channels() > 0, "feature config selects no channels");
    let to = (to.0 as usize).min(series.n_slots()) as u32;
    let mut out = Vec::new();
    for t in from.0..to {
        let slot = SlotId(t);
        if let Some(input) = features_for(series, clock, cfg, slot) {
            let target: Vec<f32> = series.slot(slot).iter().map(|&v| v as f32).collect();
            out.push(Sample {
                slot,
                input,
                target: Tensor::from_vec(&[target.len()], target),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(side: u32, n_slots: usize) -> CountSeries {
        let mut s = CountSeries::zeros(side, n_slots);
        for t in 0..n_slots {
            let v = s.slot_mut(SlotId(t as u32));
            for (i, x) in v.iter_mut().enumerate() {
                *x = (t * 100 + i) as f64;
            }
        }
        s
    }

    #[test]
    fn closeness_channels_stack_recent_slots() {
        let clock = SlotClock::default();
        let s = series(2, 10);
        let cfg = FeatureConfig::closeness_only(3);
        let f = features_for(&s, &clock, &cfg, SlotId(5)).unwrap();
        assert_eq!(f.shape(), &[3, 2, 2]);
        // Channel 0 = slot 4, channel 1 = slot 3, channel 2 = slot 2.
        assert_eq!(f.as_slice()[0], 400.0);
        assert_eq!(f.as_slice()[4], 300.0);
        assert_eq!(f.as_slice()[8], 200.0);
    }

    #[test]
    fn period_and_trend_reach_back_days_and_weeks() {
        let clock = SlotClock::default();
        let n = 48 * 15;
        let s = series(1, n);
        let cfg = FeatureConfig {
            closeness: 1,
            period_days: 2,
            trend_weeks: 1,
        };
        let slot = SlotId(48 * 14 + 5);
        let f = features_for(&s, &clock, &cfg, slot).unwrap();
        assert_eq!(f.shape(), &[4, 1, 1]);
        assert_eq!(f.as_slice()[0], (slot.0 - 1) as f32 * 100.0);
        assert_eq!(f.as_slice()[1], (slot.0 - 48) as f32 * 100.0);
        assert_eq!(f.as_slice()[2], (slot.0 - 96) as f32 * 100.0);
        assert_eq!(f.as_slice()[3], (slot.0 - 48 * 7) as f32 * 100.0);
    }

    #[test]
    fn window_underflow_returns_none() {
        let clock = SlotClock::default();
        let s = series(2, 100);
        let cfg = FeatureConfig {
            closeness: 2,
            period_days: 1,
            trend_weeks: 0,
        };
        assert_eq!(cfg.first_usable_slot(&clock), 48);
        assert!(features_for(&s, &clock, &cfg, SlotId(47)).is_none());
        assert!(features_for(&s, &clock, &cfg, SlotId(48)).is_some());
    }

    #[test]
    fn build_samples_covers_exactly_the_usable_range() {
        let clock = SlotClock::default();
        let s = series(2, 60);
        let cfg = FeatureConfig::closeness_only(4);
        let samples = build_samples(&s, &clock, &cfg, SlotId(0), SlotId(60));
        assert_eq!(samples.len(), 56);
        assert_eq!(samples[0].slot, SlotId(4));
        assert_eq!(samples.last().unwrap().slot, SlotId(59));
        // Targets match the series.
        assert_eq!(samples[0].target.as_slice()[1], 401.0);
        // Range past the horizon is clipped, not a panic.
        let clipped = build_samples(&s, &clock, &cfg, SlotId(50), SlotId(1000));
        assert_eq!(clipped.len(), 10);
    }
}
