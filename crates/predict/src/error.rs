//! Typed errors for the prediction layer.

use gridtuner_spatial::SpatialError;

/// A failure while fitting or evaluating a predictor.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictError {
    /// `predict` was called before `fit`.
    NotFitted,
    /// The series passed to `predict` is on a different lattice than the
    /// one the model was fitted on.
    LatticeMismatch {
        /// Side the model was fitted on.
        expected: u32,
        /// Side of the series received.
        got: u32,
    },
    /// Every requested evaluation slot fell beyond the series horizon.
    NoEvaluableSlots,
    /// A shape/bounds failure in the spatial substrate.
    Shape(SpatialError),
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::NotFitted => write!(f, "predict called before fit"),
            PredictError::LatticeMismatch { expected, got } => {
                write!(
                    f,
                    "series resolution changed: fitted on side {expected}, got {got}"
                )
            }
            PredictError::NoEvaluableSlots => write!(f, "no evaluable slots"),
            PredictError::Shape(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PredictError {}

impl From<SpatialError> for PredictError {
    fn from(e: SpatialError) -> Self {
        PredictError::Shape(e)
    }
}
