//! A reusable training loop with validation-based early stopping,
//! learning-rate decay and gradient clipping.
//!
//! [`super::models::NnCore`]'s fixed-epoch loop is fine for harness sweeps
//! where wall-clock predictability matters; `fit_until` is the
//! production-style alternative: hold out a slice of the samples, stop when
//! validation stops improving, and keep the best weights seen.

use crate::features::Sample;
use gridtuner_nn::{clip_gradients, huber_loss, Adam, Layer, Optimizer, Sequential, Tensor};
use gridtuner_obs as obs;

/// Early-stopping configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitConfig {
    /// Upper bound on epochs.
    pub max_epochs: usize,
    /// Stop after this many epochs without validation improvement.
    pub patience: usize,
    /// Fraction of samples held out for validation (0 disables early
    /// stopping and trains for `max_epochs`).
    pub val_fraction: f64,
    /// Initial Adam learning rate.
    pub lr: f32,
    /// Multiplicative LR decay per epoch.
    pub lr_decay: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Gradient clip limit (`0` disables clipping).
    pub grad_clip: f32,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig {
            max_epochs: 40,
            patience: 4,
            val_fraction: 0.15,
            lr: 1e-3,
            lr_decay: 0.97,
            batch_size: 16,
            grad_clip: 5.0,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitReport {
    /// Epochs actually run.
    pub epochs: usize,
    /// Best validation loss seen (mean Huber per sample); training loss
    /// when no validation split was requested.
    pub best_val_loss: f64,
    /// Whether early stopping (rather than the epoch cap) ended training.
    pub stopped_early: bool,
}

/// Normalizes a sample set once: every epoch then borrows the scaled
/// tensors instead of cloning and rescaling per step.
fn normalize(samples: &[Sample], norm: f32) -> Vec<(Tensor, Tensor)> {
    samples
        .iter()
        .map(|s| {
            let mut x = s.input.clone();
            x.scale(1.0 / norm);
            let mut t = s.target.clone();
            t.scale(1.0 / norm);
            (x, t)
        })
        .collect()
}

fn epoch_loss(net: &mut Sequential, data: &[(Tensor, Tensor)]) -> f64 {
    let mut acc = 0.0;
    for (x, t) in data {
        let y = net.forward(x);
        acc += huber_loss(&y, t, 1.0).0;
    }
    acc / data.len().max(1) as f64
}

/// Snapshot / restore of all parameter values.
fn snapshot(net: &mut Sequential) -> Vec<Vec<f32>> {
    net.params_mut()
        .iter()
        .map(|p| p.value.as_slice().to_vec())
        .collect()
}

fn restore(net: &mut Sequential, snap: &[Vec<f32>]) {
    for (p, s) in net.params_mut().into_iter().zip(snap) {
        p.value.as_mut_slice().copy_from_slice(s);
    }
}

/// Trains `net` on `samples` (already shuffled by the caller; the split
/// takes the tail as validation). `norm` is the normalization constant the
/// caller derived from the training data.
pub fn fit_until(
    net: &mut Sequential,
    samples: &[Sample],
    norm: f32,
    cfg: &FitConfig,
) -> FitReport {
    assert!(!samples.is_empty(), "no training samples");
    assert!(norm > 0.0, "normalization must be positive");
    let _span = obs::span!("fit", samples = samples.len(), max_epochs = cfg.max_epochs);
    let n_val = ((samples.len() as f64) * cfg.val_fraction) as usize;
    let (train, val) = samples.split_at(samples.len() - n_val);
    // Scale inputs/targets once up front: the epoch loop below only
    // borrows, so no tensor is cloned per training step.
    let train_data = normalize(train, norm);
    let val_data = normalize(val, norm);
    let mut opt = Adam::new(cfg.lr);
    let mut best = f64::INFINITY;
    let mut best_snap = snapshot(net);
    let mut since_best = 0usize;
    let mut epochs = 0usize;
    let mut stopped_early = false;
    for epoch in 0..cfg.max_epochs {
        let _epoch_span = obs::span!("fit.epoch", epoch = epoch);
        epochs = epoch + 1;
        opt.lr = cfg.lr * cfg.lr_decay.powi(epoch as i32);
        for batch in train_data.chunks(cfg.batch_size.max(1)) {
            net.zero_grad();
            for (x, t) in batch {
                let y = net.forward(x);
                let (_, g) = huber_loss(&y, t, 1.0);
                net.backward(&g);
            }
            for p in net.params_mut() {
                p.grad.scale(1.0 / batch.len() as f32);
            }
            if cfg.grad_clip > 0.0 {
                clip_gradients(&mut net.params_mut(), cfg.grad_clip);
            }
            opt.step(&mut net.params_mut());
        }
        let monitored = if val_data.is_empty() {
            epoch_loss(net, &train_data)
        } else {
            epoch_loss(net, &val_data)
        };
        obs::counter!("train.epochs").inc();
        obs::event!("train.epoch", epoch = epoch, loss = monitored);
        if monitored < best - 1e-9 {
            best = monitored;
            best_snap = snapshot(net);
            since_best = 0;
        } else {
            since_best += 1;
            if !val_data.is_empty() && since_best >= cfg.patience {
                stopped_early = true;
                break;
            }
        }
    }
    restore(net, &best_snap);
    FitReport {
        epochs,
        best_val_loss: best,
        stopped_early,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridtuner_nn::{Dense, ReLU, Tensor};
    use rand::{rngs::StdRng, SeedableRng};

    fn toy_samples(n: usize) -> Vec<Sample> {
        // y = x0 + 2*x1 on a 1-cell "grid", shuffled (fit_until expects the
        // caller to shuffle before the tail-validation split).
        use rand::seq::SliceRandom;
        let mut out: Vec<Sample> = (0..n)
            .map(|i| {
                let x0 = (i % 10) as f32 / 10.0;
                let x1 = (i / 10) as f32 / 10.0;
                Sample {
                    slot: gridtuner_spatial::SlotId(i as u32),
                    input: Tensor::from_vec(&[2, 1, 1], vec![x0, x1]),
                    target: Tensor::vector(&[x0 + 2.0 * x1]),
                }
            })
            .collect();
        out.shuffle(&mut StdRng::seed_from_u64(99));
        out
    }

    fn toy_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(gridtuner_nn::Flatten::new()),
            Box::new(Dense::new(&mut rng, 2, 16)),
            Box::new(ReLU::new()),
            Box::new(Dense::new(&mut rng, 16, 1)),
        ])
    }

    #[test]
    fn fit_until_learns_the_toy_function() {
        let samples = toy_samples(100);
        let mut net = toy_net(3);
        let cfg = FitConfig {
            lr: 0.01,
            max_epochs: 150,
            patience: 150,
            ..FitConfig::default()
        };
        let report = fit_until(&mut net, &samples, 1.0, &cfg);
        assert!(report.best_val_loss < 0.05, "val loss {report:?}");
        assert!(report.epochs >= 1);
    }

    #[test]
    fn early_stopping_triggers_on_plateau() {
        let samples = toy_samples(60);
        let mut net = toy_net(4);
        let cfg = FitConfig {
            max_epochs: 200,
            patience: 3,
            lr: 0.01,
            ..FitConfig::default()
        };
        let report = fit_until(&mut net, &samples, 1.0, &cfg);
        assert!(
            report.stopped_early || report.epochs == 200,
            "inconsistent report {report:?}"
        );
        assert!(report.epochs < 200, "should stop early on this toy problem");
    }

    #[test]
    fn best_weights_are_restored() {
        // Train with a huge LR that destabilizes late epochs: the reported
        // loss must match the restored weights' loss, not the final ones.
        let samples = toy_samples(80);
        let mut net = toy_net(5);
        let cfg = FitConfig {
            max_epochs: 30,
            patience: 30, // never stop early
            lr: 0.3,
            lr_decay: 1.0,
            ..FitConfig::default()
        };
        let report = fit_until(&mut net, &samples, 1.0, &cfg);
        let n_val = (samples.len() as f64 * cfg.val_fraction) as usize;
        let val = normalize(&samples[samples.len() - n_val..], 1.0);
        let actual = epoch_loss(&mut net, &val);
        assert!(
            (actual - report.best_val_loss).abs() < 1e-9,
            "restored loss {actual} vs reported {}",
            report.best_val_loss
        );
    }

    #[test]
    fn zero_val_fraction_trains_full_epochs() {
        let samples = toy_samples(40);
        let mut net = toy_net(6);
        let cfg = FitConfig {
            max_epochs: 5,
            val_fraction: 0.0,
            ..FitConfig::default()
        };
        let report = fit_until(&mut net, &samples, 1.0, &cfg);
        assert_eq!(report.epochs, 5);
        assert!(!report.stopped_early);
    }

    #[test]
    #[should_panic(expected = "no training samples")]
    fn empty_samples_rejected() {
        fit_until(&mut toy_net(7), &[], 1.0, &FitConfig::default());
    }
}
