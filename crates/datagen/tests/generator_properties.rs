//! Property-based tests for the synthetic city generator: mass
//! consistency between the three generation views (analytic mean field,
//! gridded Poisson counts, point events) and basic sanity of sampled data.

use gridtuner_datagen::{City, IntensityField, TemporalProfile};
use gridtuner_spatial::{GeoBounds, GridSpec, Point, SlotId};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn small_city(volume: f64, sigma: f64) -> City {
    City::custom(
        "prop",
        GeoBounds::xian(),
        IntensityField::new()
            .hotspot(Point::new(0.4, 0.6), sigma, 1.0)
            .background(1.0),
        TemporalProfile::taxi_default(48),
        volume,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The analytic mean field integrates to the slot's expected total at
    /// any resolution.
    #[test]
    fn mean_field_mass_is_resolution_invariant(side in 1u32..40,
                                               volume in 100.0f64..5_000.0,
                                               sigma in 0.05f64..0.3) {
        let city = small_city(volume, sigma);
        let slot = SlotId(16);
        let field = city.mean_field(GridSpec::new(side), slot);
        let expect = city.expected_slot_total(slot);
        prop_assert!((field.total() - expect).abs() / expect < 1e-9);
    }

    /// Sampled gridded counts concentrate around the analytic mean
    /// (within 6σ of the Poisson total).
    #[test]
    fn sampled_counts_track_expectation(seed in 0u64..200, side in 1u32..12) {
        let city = small_city(2_000.0, 0.15);
        let mut rng = StdRng::seed_from_u64(seed);
        let series = city.sample_count_series(GridSpec::new(side), 8, &mut rng);
        let expect: f64 = (0..8).map(|t| city.expected_slot_total(SlotId(t))).sum();
        let got: f64 = (0..8).map(|t| series.slot_total(SlotId(t))).sum();
        let sd = expect.sqrt();
        prop_assert!((got - expect).abs() < 6.0 * sd,
            "total {} vs expected {} (sd {})", got, expect, sd);
    }

    /// Point events and gridded counts describe the same process: binning
    /// sampled events reproduces the slot total exactly, and every event
    /// is inside the map and its slot.
    #[test]
    fn events_bin_consistently(seed in 0u64..200) {
        let city = small_city(3_000.0, 0.2);
        let mut rng = StdRng::seed_from_u64(seed);
        let slot = SlotId(17);
        let events = city.sample_slot_events(slot, &mut rng);
        for e in &events {
            prop_assert!(e.loc.in_unit_square());
            prop_assert_eq!(e.slot(city.clock()), slot);
        }
        let spec = GridSpec::new(9);
        let binned: f64 = {
            let mut c = 0.0;
            for e in &events {
                if spec.cell_of(&e.loc).is_some() {
                    c += 1.0;
                }
            }
            c
        };
        prop_assert_eq!(binned as usize, events.len());
    }

    /// Scaling a city's volume scales every expected total linearly.
    #[test]
    fn scaling_is_linear(scale in 0.01f64..10.0) {
        let base = small_city(1_000.0, 0.2);
        let scaled = base.clone().scaled(scale);
        let slot = SlotId(30);
        let a = base.expected_slot_total(slot);
        let b = scaled.expected_slot_total(slot);
        prop_assert!((b / a - scale).abs() < 1e-9);
    }
}
