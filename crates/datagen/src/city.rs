//! City presets and the generation API.
//!
//! A [`City`] bundles a spatial [`IntensityField`], a [`TemporalProfile`],
//! a daily order volume and the geographic bounds, and can generate:
//!
//! * gridded count series at any resolution (for model training) —
//!   [`City::sample_count_series`];
//! * point events for single slots or whole days (for α estimation and the
//!   dispatch case study) — [`City::sample_slot_events`] /
//!   [`City::sample_day_events`];
//! * the *analytic* mean field `α` at any resolution —
//!   [`City::mean_field`] — handy when an experiment wants the
//!   noise-free ground truth instead of the paper's historical estimate.
//!
//! The presets are calibrated to the paper's datasets: test-day volumes of
//! ≈282k (NYC), ≈239k (Chengdu), ≈110k (Xi'an) and spatial unevenness
//! ordered NYC > Chengdu > Xi'an (Sec. V-C: "orders in NYC are more evenly
//! distributed than in Chengdu" refers to *expression error being larger in
//! NYC*; Fig. 10 and Appendix B establish the unevenness ordering we use).

use crate::intensity::IntensityField;
use crate::sampling::sample_negative_binomial;
use crate::temporal::TemporalProfile;
use gridtuner_spatial::{
    CountMatrix, CountSeries, Event, GeoBounds, GridSpec, Point, SlotClock, SlotId,
};
use rand::Rng;

/// Train/validation/test day split (paper Sec. V-A, rescaled to a synthetic
/// horizon: 8 weeks of training history, one validation week, one test day).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataSplit {
    /// Training days (half-open).
    pub train_days: (u32, u32),
    /// Validation days (half-open).
    pub val_days: (u32, u32),
    /// The single test day.
    pub test_day: u32,
}

impl Default for DataSplit {
    fn default() -> Self {
        DataSplit {
            train_days: (0, 56),
            val_days: (56, 63),
            test_day: 63,
        }
    }
}

impl DataSplit {
    /// Total horizon in days (test day inclusive).
    pub fn horizon_days(&self) -> u32 {
        self.test_day + 1
    }
}

/// A synthetic city: where and when events happen, and how many.
///
/// Two misspecification knobs (both off by default, and bit-identical to
/// the plain Poisson/stationary path when off) let the robustness harness
/// break the tuner's modeling assumptions on purpose:
///
/// * [`City::with_overdispersion`] — counts become negative binomial with
///   `Var = μ + φ·μ²` instead of Poisson;
/// * [`City::with_drift`] — hotspots translate by a fixed vector per day,
///   so the sampled events diverge from the stationary
///   [`City::mean_field`] as the horizon grows.
#[derive(Debug, Clone, PartialEq)]
pub struct City {
    name: String,
    geo: GeoBounds,
    intensity: IntensityField,
    temporal: TemporalProfile,
    daily_volume: f64,
    clock: SlotClock,
    /// Count overdispersion φ (0 = exact Poisson).
    overdispersion: f64,
    /// Per-day hotspot translation `(dx, dy)` (zero = stationary).
    drift: (f64, f64),
}

impl City {
    /// Builds a custom city.
    pub fn custom(
        name: impl Into<String>,
        geo: GeoBounds,
        intensity: IntensityField,
        temporal: TemporalProfile,
        daily_volume: f64,
    ) -> Self {
        assert!(daily_volume > 0.0, "daily volume must be positive");
        City {
            name: name.into(),
            geo,
            intensity,
            temporal,
            daily_volume,
            clock: SlotClock::default(),
            overdispersion: 0.0,
            drift: (0.0, 0.0),
        }
    }

    /// NYC-like preset: a dominant Manhattan-style spine with dense
    /// hotspots — the most unevenly distributed of the three.
    pub fn nyc() -> Self {
        let intensity = IntensityField::new()
            .road(Point::new(0.38, 0.12), Point::new(0.52, 0.95), 0.035, 3.0)
            .hotspot(Point::new(0.46, 0.62), 0.040, 2.5)
            .hotspot(Point::new(0.42, 0.35), 0.030, 1.5)
            .hotspot(Point::new(0.80, 0.45), 0.030, 0.6)
            .background(0.45);
        City::custom(
            "nyc",
            GeoBounds::nyc(),
            intensity,
            TemporalProfile::taxi_default(48).with_weekend_factor(0.85),
            282_255.0,
        )
    }

    /// Chengdu-like preset: a strong city core with sub-centers — less
    /// uneven than NYC.
    pub fn chengdu() -> Self {
        let intensity = IntensityField::new()
            .hotspot(Point::new(0.50, 0.50), 0.130, 2.0)
            .hotspot(Point::new(0.30, 0.65), 0.070, 0.7)
            .hotspot(Point::new(0.68, 0.40), 0.070, 0.7)
            .hotspot(Point::new(0.45, 0.25), 0.060, 0.5)
            .background(1.1);
        City::custom(
            "chengdu",
            GeoBounds::chengdu(),
            intensity,
            TemporalProfile::taxi_default(48).with_weekend_factor(0.9),
            238_868.0,
        )
    }

    /// Xi'an-like preset: one broad central blob over a strong background —
    /// the most evenly distributed and the smallest volume.
    pub fn xian() -> Self {
        let intensity = IntensityField::new()
            .hotspot(Point::new(0.50, 0.50), 0.220, 1.0)
            .background(1.6);
        City::custom(
            "xian",
            GeoBounds::xian(),
            intensity,
            TemporalProfile::taxi_default(48).with_weekend_factor(0.9),
            109_753.0,
        )
    }

    /// All three presets, in the paper's order.
    pub fn all_presets() -> Vec<City> {
        vec![City::nyc(), City::chengdu(), City::xian()]
    }

    /// Preset names accepted by [`City::by_name`], in the paper's order.
    pub const PRESET_NAMES: [&'static str; 3] = ["nyc", "chengdu", "xian"];

    /// Looks up a preset by name (case-insensitive). The shared front door
    /// for every CLI-style `--city` argument.
    pub fn by_name(name: &str) -> Result<City, UnknownCity> {
        match name.to_ascii_lowercase().as_str() {
            "nyc" => Ok(City::nyc()),
            "chengdu" => Ok(City::chengdu()),
            "xian" => Ok(City::xian()),
            _ => Err(UnknownCity {
                name: name.to_string(),
            }),
        }
    }

    /// City name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Geographic bounds.
    pub fn geo(&self) -> &GeoBounds {
        &self.geo
    }

    /// The slot clock (48 × 30-minute slots).
    pub fn clock(&self) -> &SlotClock {
        &self.clock
    }

    /// Expected weekday volume.
    pub fn daily_volume(&self) -> f64 {
        self.daily_volume
    }

    /// The spatial intensity field.
    pub fn intensity(&self) -> &IntensityField {
        &self.intensity
    }

    /// Returns a copy with the daily volume multiplied by `scale` — the
    /// knob the harness uses for `--quick` runs.
    pub fn scaled(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.daily_volume *= scale;
        self
    }

    /// Returns a copy whose counts are overdispersed: negative binomial
    /// with `Var = μ + φ·μ²`. `φ = 0` restores the exact Poisson path,
    /// bit-for-bit on any fixed seed.
    pub fn with_overdispersion(mut self, phi: f64) -> Self {
        assert!(
            phi >= 0.0 && phi.is_finite(),
            "overdispersion must be finite and non-negative"
        );
        self.overdispersion = phi;
        self
    }

    /// Returns a copy whose hotspots translate by `(dx, dy)` per day —
    /// the train/test drift knob. Event locations on day `d` are drawn
    /// from the intensity shifted by `(d·dx, d·dy)` while
    /// [`City::mean_field`] keeps reporting the stationary day-0 field, so
    /// the model's assumption is deliberately wrong. `(0, 0)` restores the
    /// stationary path, bit-for-bit on any fixed seed.
    pub fn with_drift(mut self, dx: f64, dy: f64) -> Self {
        assert!(dx.is_finite() && dy.is_finite(), "drift must be finite");
        self.drift = (dx, dy);
        self
    }

    /// The overdispersion knob φ (0 = exact Poisson).
    pub fn overdispersion(&self) -> f64 {
        self.overdispersion
    }

    /// The per-day drift knob `(dx, dy)` (zero = stationary).
    pub fn drift(&self) -> (f64, f64) {
        self.drift
    }

    /// One count draw with the city's dispersion setting (`φ = 0` consumes
    /// exactly the Poisson stream).
    fn draw_count<R: Rng + ?Sized>(&self, rng: &mut R, mean: f64) -> u64 {
        sample_negative_binomial(rng, mean, self.overdispersion)
    }

    /// The intensity field events on `day` are drawn from: the base field
    /// when drift is off, a per-day translated copy otherwise.
    fn drifted_intensity(&self, day: u32) -> std::borrow::Cow<'_, IntensityField> {
        if self.drift == (0.0, 0.0) {
            std::borrow::Cow::Borrowed(&self.intensity)
        } else {
            let d = day as f64;
            std::borrow::Cow::Owned(self.intensity.shifted(self.drift.0 * d, self.drift.1 * d))
        }
    }

    /// Expected total events in a global slot.
    pub fn expected_slot_total(&self, slot: SlotId) -> f64 {
        self.daily_volume * self.temporal.slot_factor(&self.clock, slot)
    }

    /// Per-cell spatial shares on `spec` (sums to 1). `O(side² ·
    /// components)`; callers looping over slots should compute this once.
    pub fn cell_weights(&self, spec: GridSpec) -> Vec<f64> {
        self.intensity.cell_weights(spec)
    }

    /// The analytic mean field for one slot: expected events per cell.
    pub fn mean_field(&self, spec: GridSpec, slot: SlotId) -> CountMatrix {
        let weights = self.cell_weights(spec);
        self.mean_field_with(&weights, spec, slot)
    }

    /// [`City::mean_field`] with precomputed weights.
    pub fn mean_field_with(&self, weights: &[f64], spec: GridSpec, slot: SlotId) -> CountMatrix {
        assert_eq!(weights.len(), spec.n_cells(), "weights/spec mismatch");
        let total = self.expected_slot_total(slot);
        CountMatrix::from_vec(spec.side(), weights.iter().map(|w| w * total).collect())
            .expect("weights length checked above")
    }

    /// Samples a gridded count series for slots `0..n_slots`: one count
    /// draw per (slot, cell) — Poisson, or negative binomial under the
    /// overdispersion knob; per-day shifted weights under the drift knob.
    /// This is the model-training view of the city.
    pub fn sample_count_series<R: Rng + ?Sized>(
        &self,
        spec: GridSpec,
        n_slots: usize,
        rng: &mut R,
    ) -> CountSeries {
        let base_weights = self.cell_weights(spec);
        let mut day_weights: Option<(u32, Vec<f64>)> = None;
        let mut series = CountSeries::zeros(spec.side(), n_slots);
        for t in 0..n_slots {
            let slot = SlotId(t as u32);
            let total = self.expected_slot_total(slot);
            let weights: &[f64] = if self.drift == (0.0, 0.0) {
                &base_weights
            } else {
                let day = self.clock.day_of(slot);
                if day_weights.as_ref().map(|(d, _)| *d) != Some(day) {
                    let w = self.drifted_intensity(day).cell_weights(spec);
                    day_weights = Some((day, w));
                }
                match &day_weights {
                    Some((_, w)) => w,
                    None => &base_weights, // not reachable: set just above
                }
            };
            let out = series.slot_mut(slot);
            for (cell, &w) in weights.iter().enumerate() {
                out[cell] = self.draw_count(rng, w * total) as f64;
            }
        }
        series
    }

    /// Samples point events for one slot: draws the slot count (Poisson,
    /// or negative binomial under the overdispersion knob) with i.i.d.
    /// locations from the (possibly day-drifted) intensity and uniform
    /// minutes in the slot.
    pub fn sample_slot_events<R: Rng + ?Sized>(&self, slot: SlotId, rng: &mut R) -> Vec<Event> {
        let total = self.expected_slot_total(slot);
        let n = self.draw_count(rng, total);
        let intensity = self.drifted_intensity(self.clock.day_of(slot));
        let start = self.clock.minute_of_slot(slot);
        let span = self.clock.slot_minutes();
        (0..n)
            .map(|_| Event::new(intensity.sample_point(rng), start + rng.gen_range(0..span)))
            .collect()
    }

    /// Samples point events for every slot of one day.
    pub fn sample_day_events<R: Rng + ?Sized>(&self, day: u32, rng: &mut R) -> Vec<Event> {
        let mut out = Vec::new();
        for s in 0..self.clock.slots_per_day() {
            out.extend(self.sample_slot_events(self.clock.slot_at(day, s), rng));
        }
        out
    }

    /// Samples the α-estimation history: events at `slot_of_day` for each
    /// day in `days` — the cheap substitute for storing months of full-day
    /// logs.
    pub fn sample_history_events<R: Rng + ?Sized>(
        &self,
        slot_of_day: u32,
        days: std::ops::Range<u32>,
        rng: &mut R,
    ) -> Vec<Event> {
        let mut out = Vec::new();
        for d in days {
            out.extend(self.sample_slot_events(self.clock.slot_at(d, slot_of_day), rng));
        }
        out
    }
}

/// [`City::by_name`] was asked for a preset that does not exist.
#[derive(Debug, Clone, PartialEq)]
pub struct UnknownCity {
    /// The name that was requested.
    pub name: String,
}

impl std::fmt::Display for UnknownCity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown city {:?} (expected one of: {})",
            self.name,
            City::PRESET_NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownCity {}

#[cfg(test)]
mod tests {
    use super::*;
    use gridtuner_core::dalpha::d_alpha;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn by_name_resolves_presets_and_rejects_unknowns() {
        assert_eq!(City::by_name("nyc").unwrap().name(), "nyc");
        assert_eq!(City::by_name("Chengdu").unwrap().name(), "chengdu");
        assert_eq!(City::by_name("XIAN").unwrap().name(), "xian");
        let err = City::by_name("gotham").unwrap_err();
        assert_eq!(err.name, "gotham");
        let msg = err.to_string();
        for name in City::PRESET_NAMES {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
    }

    #[test]
    fn preset_volumes_match_paper() {
        assert_eq!(City::nyc().daily_volume(), 282_255.0);
        assert_eq!(City::chengdu().daily_volume(), 238_868.0);
        assert_eq!(City::xian().daily_volume(), 109_753.0);
    }

    #[test]
    fn unevenness_ordering_nyc_chengdu_xian() {
        // Compare D_α of the normalized spatial shares (volume-independent).
        let spec = GridSpec::new(32);
        let d = |c: &City| {
            let w = c.cell_weights(spec);
            d_alpha(&CountMatrix::from_vec(32, w).unwrap())
        };
        let (n, c, x) = (d(&City::nyc()), d(&City::chengdu()), d(&City::xian()));
        assert!(
            n > c && c > x,
            "unevenness: nyc={n:.3} chengdu={c:.3} xian={x:.3}"
        );
    }

    #[test]
    fn expected_slot_total_follows_profile() {
        let city = City::xian().scaled(0.1);
        let clock = *city.clock();
        let morning = city.expected_slot_total(clock.slot_at(0, 17));
        let night = city.expected_slot_total(clock.slot_at(0, 8));
        assert!(morning > 2.0 * night);
        // Whole-day total equals the daily volume on a weekday.
        let day_total: f64 = (0..48)
            .map(|s| city.expected_slot_total(clock.slot_at(0, s)))
            .sum();
        assert!((day_total - city.daily_volume()).abs() / city.daily_volume() < 1e-9);
    }

    #[test]
    fn sampled_counts_match_means() {
        let city = City::chengdu().scaled(0.02);
        let spec = GridSpec::new(8);
        let mut rng = StdRng::seed_from_u64(17);
        let series = city.sample_count_series(spec, 48, &mut rng);
        let expected: f64 = (0..48).map(|s| city.expected_slot_total(SlotId(s))).sum();
        let got: f64 = (0..48).map(|s| series.slot_total(SlotId(s))).sum();
        assert!(
            (got - expected).abs() / expected < 0.05,
            "expected {expected}, sampled {got}"
        );
    }

    #[test]
    fn slot_events_count_matches_mean() {
        let city = City::nyc().scaled(0.01);
        let mut rng = StdRng::seed_from_u64(5);
        let slot = city.clock().slot_at(0, 16);
        let expect = city.expected_slot_total(slot);
        let n: usize = (0..20)
            .map(|_| city.sample_slot_events(slot, &mut rng).len())
            .sum();
        let mean = n as f64 / 20.0;
        assert!((mean - expect).abs() / expect < 0.1, "{mean} vs {expect}");
        // Minutes fall inside the slot.
        for e in city.sample_slot_events(slot, &mut rng) {
            assert!(e.minute >= 16 * 30 && e.minute < 17 * 30);
        }
    }

    #[test]
    fn day_events_cover_all_slots() {
        let city = City::xian().scaled(0.005);
        let mut rng = StdRng::seed_from_u64(8);
        let events = city.sample_day_events(2, &mut rng);
        assert!(!events.is_empty());
        for e in &events {
            assert_eq!(city.clock().day_of(e.slot(city.clock())), 2);
            assert!(e.loc.in_unit_square());
        }
    }

    #[test]
    fn history_events_only_at_requested_slot() {
        let city = City::xian().scaled(0.01);
        let mut rng = StdRng::seed_from_u64(4);
        let events = city.sample_history_events(16, 0..5, &mut rng);
        for e in &events {
            assert_eq!(city.clock().slot_of_day(e.slot(city.clock())), 16);
        }
    }

    #[test]
    fn mean_field_scales_with_weights() {
        let city = City::chengdu().scaled(0.1);
        let spec = GridSpec::new(4);
        let slot = SlotId(16);
        let field = city.mean_field(spec, slot);
        assert!((field.total() - city.expected_slot_total(slot)).abs() < 1e-6);
    }

    #[test]
    fn zero_knobs_are_bit_identical_to_the_poisson_path() {
        // φ=0 and drift=(0,0) must reproduce the untouched city's streams
        // exactly — same seed, same bits.
        let base = City::nyc().scaled(0.01);
        let knobbed = base.clone().with_overdispersion(0.0).with_drift(0.0, 0.0);
        assert_eq!(base, knobbed);
        let slot = base.clock().slot_at(3, 16);
        let mut a = StdRng::seed_from_u64(21);
        let mut b = StdRng::seed_from_u64(21);
        let ea = base.sample_slot_events(slot, &mut a);
        let eb = knobbed.sample_slot_events(slot, &mut b);
        assert_eq!(ea.len(), eb.len());
        for (x, y) in ea.iter().zip(&eb) {
            assert_eq!(x.loc.x.to_bits(), y.loc.x.to_bits());
            assert_eq!(x.loc.y.to_bits(), y.loc.y.to_bits());
            assert_eq!(x.minute, y.minute);
        }
        let mut a = StdRng::seed_from_u64(22);
        let mut b = StdRng::seed_from_u64(22);
        let sa = base.sample_count_series(GridSpec::new(4), 48, &mut a);
        let sb = knobbed.sample_count_series(GridSpec::new(4), 48, &mut b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn overdispersion_inflates_count_variance() {
        let base = City::xian().scaled(0.002);
        let phi = 1.0;
        let over = base.clone().with_overdispersion(phi);
        assert_eq!(over.overdispersion(), phi);
        let slot = base.clock().slot_at(0, 16);
        let mu = base.expected_slot_total(slot);
        let draws = 3_000usize;
        let var_of = |city: &City, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let counts: Vec<f64> = (0..draws)
                .map(|_| city.sample_slot_events(slot, &mut rng).len() as f64)
                .collect();
            let m = counts.iter().sum::<f64>() / draws as f64;
            counts.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (draws - 1) as f64
        };
        let v_poisson = var_of(&base, 33);
        let v_over = var_of(&over, 33);
        // Poisson: Var ≈ μ. Overdispersed: Var ≈ μ + φμ², far larger here.
        assert!((v_poisson - mu).abs() / mu < 0.25, "{v_poisson} vs μ={mu}");
        assert!(
            v_over > 0.5 * (mu + phi * mu * mu),
            "v_over={v_over}, want ≳ {}",
            mu + phi * mu * mu
        );
    }

    #[test]
    fn drift_moves_events_in_the_expected_direction() {
        // A pure-hotspot city drifting +x: later days' mean x must grow.
        let intensity = IntensityField::new().hotspot(Point::new(0.3, 0.5), 0.05, 1.0);
        let city = City::custom(
            "drifty",
            GeoBounds::xian(),
            intensity,
            TemporalProfile::taxi_default(48),
            2_000.0,
        )
        .with_drift(0.02, 0.0);
        assert_eq!(city.drift(), (0.02, 0.0));
        let mean_x = |day: u32, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let events = city.sample_history_events(16, day..day + 1, &mut rng);
            assert!(!events.is_empty());
            events.iter().map(|e| e.loc.x).sum::<f64>() / events.len() as f64
        };
        let early = mean_x(0, 51);
        let late = mean_x(10, 51);
        // 10 days × 0.02/day = 0.2 expected shift; allow sampling slack.
        assert!(
            late - early > 0.15,
            "mean x day0={early:.3} day10={late:.3}"
        );
        // Day 0 matches the undrifted field exactly (shift is d·dx = 0).
        let still = city.clone().with_drift(0.0, 0.0);
        let mut a = StdRng::seed_from_u64(60);
        let mut b = StdRng::seed_from_u64(60);
        let slot = city.clock().slot_at(0, 16);
        assert_eq!(
            city.sample_slot_events(slot, &mut a),
            still.sample_slot_events(slot, &mut b)
        );
    }

    #[test]
    fn default_split_is_consistent() {
        let s = DataSplit::default();
        assert!(s.train_days.1 <= s.val_days.0);
        assert!(s.val_days.1 <= s.test_day);
        assert_eq!(s.horizon_days(), 64);
    }
}
