//! Spatial intensity fields.
//!
//! An [`IntensityField`] is a normalized mixture of components over the
//! unit square:
//!
//! * **Gaussian hotspots** — business districts, stations;
//! * **road ridges** — demand concentrated along a line segment with a
//!   Gaussian cross-section (the paper's Fig. 12(a) shows exactly this
//!   pattern: "a long main road in the middle with lots of events");
//! * **uniform background** — diffuse residential demand.
//!
//! Three consumers, all consistent with one another:
//! [`IntensityField::density`] (pointwise evaluation),
//! [`IntensityField::sample_point`] (exact mixture sampling, truncated to
//! the unit square by rejection) and [`IntensityField::cell_weights`]
//! (per-cell integrals by midpoint supersampling, normalized to sum to 1).

use gridtuner_spatial::{GridSpec, Point};
use rand::Rng;

/// One mixture component.
#[derive(Debug, Clone, PartialEq)]
enum Component {
    Gaussian { center: Point, sigma: f64 },
    Road { a: Point, b: Point, width: f64 },
    Uniform,
}

impl Component {
    /// Unnormalized density at `p` (each component integrates to ≈1 over
    /// the plane / unit square before truncation).
    fn density(&self, p: &Point) -> f64 {
        match self {
            Component::Gaussian { center, sigma } => {
                let d2 = (p.x - center.x).powi(2) + (p.y - center.y).powi(2);
                (-d2 / (2.0 * sigma * sigma)).exp() / (2.0 * std::f64::consts::PI * sigma * sigma)
            }
            Component::Road { a, b, width } => {
                // Density of "uniform along the segment × Gaussian across":
                // zero beyond the segment's ends so that density and
                // sampling describe exactly the same distribution.
                let abx = b.x - a.x;
                let aby = b.y - a.y;
                let len2 = abx * abx + aby * aby;
                if len2 == 0.0 {
                    return 0.0;
                }
                let t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len2;
                if !(0.0..=1.0).contains(&t) {
                    return 0.0;
                }
                let proj = Point::new(a.x + t * abx, a.y + t * aby);
                let d = p.dist(&proj);
                let len = len2.sqrt();
                (-d * d / (2.0 * width * width)).exp()
                    / ((2.0 * std::f64::consts::PI).sqrt() * width * len)
            }
            Component::Uniform => 1.0,
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        match self {
            Component::Gaussian { center, sigma } => {
                let (gx, gy) = gauss_pair(rng);
                Point::new(center.x + sigma * gx, center.y + sigma * gy)
            }
            Component::Road { a, b, width } => {
                let t: f64 = rng.gen();
                let (g, _) = gauss_pair(rng);
                // Unit normal to the segment.
                let abx = b.x - a.x;
                let aby = b.y - a.y;
                let len = (abx * abx + aby * aby).sqrt().max(1e-9);
                let (nx, ny) = (-aby / len, abx / len);
                Point::new(
                    a.x + t * abx + width * g * nx,
                    a.y + t * aby + width * g * ny,
                )
            }
            Component::Uniform => Point::new(rng.gen(), rng.gen()),
        }
    }
}

/// Box–Muller: two independent standard normals.
fn gauss_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// A weighted mixture of spatial components over the unit square.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IntensityField {
    components: Vec<(f64, Component)>,
}

impl IntensityField {
    /// Empty field; add components with the builder methods. A field with
    /// no components panics on use — always add at least one.
    pub fn new() -> Self {
        IntensityField::default()
    }

    /// Adds a Gaussian hotspot.
    pub fn hotspot(mut self, center: Point, sigma: f64, weight: f64) -> Self {
        assert!(sigma > 0.0 && weight > 0.0, "invalid hotspot parameters");
        self.components
            .push((weight, Component::Gaussian { center, sigma }));
        self
    }

    /// Adds a road ridge from `a` to `b` with Gaussian cross-section
    /// `width`.
    pub fn road(mut self, a: Point, b: Point, width: f64, weight: f64) -> Self {
        assert!(width > 0.0 && weight > 0.0, "invalid road parameters");
        self.components
            .push((weight, Component::Road { a, b, width }));
        self
    }

    /// Adds a uniform background.
    pub fn background(mut self, weight: f64) -> Self {
        assert!(weight > 0.0, "invalid background weight");
        self.components.push((weight, Component::Uniform));
        self
    }

    /// Number of components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// A copy of the field with every localized component translated by
    /// `(dx, dy)`: Gaussian centers and road endpoints move, the uniform
    /// background (by definition translation-invariant) is unchanged. Used
    /// by the robustness harness's hotspot-drift knob; `(0, 0)` returns a
    /// field equal to `self`.
    pub fn shifted(&self, dx: f64, dy: f64) -> IntensityField {
        let components = self
            .components
            .iter()
            .map(|(w, c)| {
                let moved = match c {
                    Component::Gaussian { center, sigma } => Component::Gaussian {
                        center: Point::new(center.x + dx, center.y + dy),
                        sigma: *sigma,
                    },
                    Component::Road { a, b, width } => Component::Road {
                        a: Point::new(a.x + dx, a.y + dy),
                        b: Point::new(b.x + dx, b.y + dy),
                        width: *width,
                    },
                    Component::Uniform => Component::Uniform,
                };
                (*w, moved)
            })
            .collect();
        IntensityField { components }
    }

    /// Mixture density at a point (unnormalized across truncation: the
    /// small mass of hotspots leaking outside the unit square is handled by
    /// rejection in sampling and by renormalization in `cell_weights`).
    pub fn density(&self, p: &Point) -> f64 {
        assert!(!self.components.is_empty(), "empty intensity field");
        let total_w: f64 = self.components.iter().map(|(w, _)| w).sum();
        self.components
            .iter()
            .map(|(w, c)| w * c.density(p))
            .sum::<f64>()
            / total_w
    }

    /// Draws one point from the mixture, truncated to the unit square by
    /// rejection (components are chosen so the rejection rate is small).
    pub fn sample_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        assert!(!self.components.is_empty(), "empty intensity field");
        let total_w: f64 = self.components.iter().map(|(w, _)| w).sum();
        loop {
            let mut pick = rng.gen::<f64>() * total_w;
            for (w, c) in &self.components {
                pick -= w;
                if pick <= 0.0 {
                    let p = c.sample(rng);
                    if p.in_unit_square() {
                        return p;
                    }
                    break; // rejected: redraw component too
                }
            }
        }
    }

    /// The smallest spatial scale among the components (hotspot σ or road
    /// width); uniform-only fields report the unit square itself.
    fn min_feature_scale(&self) -> f64 {
        self.components
            .iter()
            .map(|(_, c)| match c {
                Component::Gaussian { sigma, .. } => *sigma,
                Component::Road { width, .. } => *width,
                Component::Uniform => 1.0,
            })
            .fold(1.0, f64::min)
    }

    /// Per-cell integral of the density over `spec`, normalized to sum
    /// to 1. Uses midpoint supersampling whose resolution adapts to the
    /// finest feature scale (sub-sample spacing ≤ scale/2), so sub-cell
    /// hotspots are integrated accurately on coarse grids too.
    pub fn cell_weights(&self, spec: GridSpec) -> Vec<f64> {
        let side = spec.side() as usize;
        let cell = 1.0 / side as f64;
        let ss = ((cell / (self.min_feature_scale() / 2.0)).ceil() as usize).clamp(3, 24);
        let sub = cell / ss as f64;
        let mut weights = vec![0.0; spec.n_cells()];
        for r in 0..side {
            for c in 0..side {
                let mut acc = 0.0;
                for i in 0..ss {
                    for j in 0..ss {
                        let p = Point::new(
                            c as f64 * cell + (j as f64 + 0.5) * sub,
                            r as f64 * cell + (i as f64 + 0.5) * sub,
                        );
                        acc += self.density(&p);
                    }
                }
                weights[r * side + c] = acc;
            }
        }
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "degenerate intensity field");
        for w in &mut weights {
            *w /= total;
        }
        weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn test_field() -> IntensityField {
        IntensityField::new()
            .hotspot(Point::new(0.3, 0.3), 0.05, 2.0)
            .road(Point::new(0.1, 0.8), Point::new(0.9, 0.8), 0.03, 1.0)
            .background(0.5)
    }

    #[test]
    fn density_peaks_at_hotspot() {
        let f = test_field();
        let at_hotspot = f.density(&Point::new(0.3, 0.3));
        let far = f.density(&Point::new(0.7, 0.2));
        assert!(at_hotspot > 10.0 * far, "{at_hotspot} vs {far}");
    }

    #[test]
    fn road_density_is_uniform_along_and_decays_across() {
        let f = IntensityField::new().road(Point::new(0.1, 0.5), Point::new(0.9, 0.5), 0.02, 1.0);
        let on_a = f.density(&Point::new(0.3, 0.5));
        let on_b = f.density(&Point::new(0.7, 0.5));
        let off = f.density(&Point::new(0.3, 0.6));
        assert!((on_a - on_b).abs() < 1e-9);
        assert!(on_a > 20.0 * off);
    }

    #[test]
    fn cell_weights_sum_to_one() {
        let f = test_field();
        for side in [1u32, 4, 13, 64] {
            let w = f.cell_weights(GridSpec::new(side));
            let total: f64 = w.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "side {side}: {total}");
        }
    }

    #[test]
    fn sampled_points_match_cell_weights() {
        // Empirical cell frequencies must track the analytic integrals.
        let f = test_field();
        let spec = GridSpec::new(4);
        let weights = f.cell_weights(spec);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000usize;
        let mut freq = vec![0.0f64; spec.n_cells()];
        for _ in 0..n {
            let p = f.sample_point(&mut rng);
            freq[spec.cell_of(&p).unwrap().index()] += 1.0 / n as f64;
        }
        for (i, (&w, &fr)) in weights.iter().zip(&freq).enumerate() {
            assert!(
                (w - fr).abs() < 0.01,
                "cell {i}: analytic {w:.4} vs empirical {fr:.4}"
            );
        }
    }

    #[test]
    fn samples_always_inside_unit_square() {
        // Hotspot on the boundary: rejection must keep points inside.
        let f = IntensityField::new().hotspot(Point::new(0.0, 0.0), 0.2, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..5_000 {
            assert!(f.sample_point(&mut rng).in_unit_square());
        }
    }

    #[test]
    fn uniform_only_field_is_flat() {
        let f = IntensityField::new().background(1.0);
        let w = f.cell_weights(GridSpec::new(8));
        for &x in &w {
            assert!((x - 1.0 / 64.0).abs() < 1e-9);
        }
        assert!((f.density(&Point::new(0.1, 0.1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shifted_moves_hotspot_and_preserves_background() {
        let f = test_field();
        let g = f.shifted(0.2, -0.1);
        // The density peak follows the translation.
        let moved_peak = g.density(&Point::new(0.5, 0.2));
        let old_peak = g.density(&Point::new(0.3, 0.3));
        assert!(moved_peak > 5.0 * old_peak, "{moved_peak} vs {old_peak}");
        // Zero shift is exactly the original field.
        assert_eq!(f.shifted(0.0, 0.0), f);
        assert_eq!(g.n_components(), f.n_components());
    }

    #[test]
    #[should_panic(expected = "empty intensity field")]
    fn empty_field_panics_on_density() {
        IntensityField::new().density(&Point::new(0.5, 0.5));
    }

    #[test]
    #[should_panic(expected = "invalid hotspot")]
    fn invalid_sigma_rejected() {
        IntensityField::new().hotspot(Point::new(0.5, 0.5), 0.0, 1.0);
    }
}
