//! Temporal demand profiles.
//!
//! A [`TemporalProfile`] distributes a city's daily volume over the 48 time
//! slots of a day (morning and evening peaks, night trough), scales
//! weekends relative to weekdays (the paper stresses "the great difference
//! in the willingness of people to travel on weekdays and workdays"), and
//! applies a slow multiplicative week-over-week trend (the paper's
//! Appendix F shows long histories hurt because "the distribution may
//! change").

use gridtuner_spatial::{SlotClock, SlotId};

/// Per-slot demand weighting.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalProfile {
    /// Relative weight per slot-of-day, normalized to sum to 1.
    diurnal: Vec<f64>,
    /// Multiplier applied on weekend days.
    weekend_factor: f64,
    /// Multiplicative drift per week (1.0 = stationary).
    weekly_trend: f64,
}

impl TemporalProfile {
    /// Builds a profile from raw diurnal weights (normalized internally).
    pub fn new(diurnal: Vec<f64>, weekend_factor: f64, weekly_trend: f64) -> Self {
        assert!(!diurnal.is_empty(), "diurnal profile cannot be empty");
        assert!(
            diurnal.iter().all(|&w| w >= 0.0) && diurnal.iter().sum::<f64>() > 0.0,
            "diurnal weights must be non-negative and not all zero"
        );
        assert!(weekend_factor > 0.0 && weekly_trend > 0.0);
        let total: f64 = diurnal.iter().sum();
        TemporalProfile {
            diurnal: diurnal.into_iter().map(|w| w / total).collect(),
            weekend_factor,
            weekly_trend,
        }
    }

    /// A city-like default for a 48-slot day: a 8:00–9:30 morning peak, a
    /// larger 17:30–20:00 evening peak, and a 3:00–5:00 trough.
    pub fn taxi_default(slots_per_day: usize) -> Self {
        let mut w = Vec::with_capacity(slots_per_day);
        for s in 0..slots_per_day {
            let hour = s as f64 * 24.0 / slots_per_day as f64;
            // Base load + two Gaussian-ish peaks.
            let morning = 1.6 * (-(hour - 8.5f64).powi(2) / 3.0).exp();
            let evening = 2.2 * (-(hour - 18.5f64).powi(2) / 5.0).exp();
            let night_dip = -0.55 * (-(hour - 4.0f64).powi(2) / 6.0).exp();
            w.push((0.6 + morning + evening + night_dip).max(0.02));
        }
        TemporalProfile::new(w, 0.8, 1.0)
    }

    /// Sets the weekend multiplier.
    pub fn with_weekend_factor(mut self, f: f64) -> Self {
        assert!(f > 0.0);
        self.weekend_factor = f;
        self
    }

    /// Sets the week-over-week drift.
    pub fn with_weekly_trend(mut self, t: f64) -> Self {
        assert!(t > 0.0);
        self.weekly_trend = t;
        self
    }

    /// Number of slots per day this profile covers.
    pub fn slots_per_day(&self) -> usize {
        self.diurnal.len()
    }

    /// Fraction of a weekday's volume falling in `slot_of_day`.
    pub fn diurnal_weight(&self, slot_of_day: u32) -> f64 {
        self.diurnal[slot_of_day as usize % self.diurnal.len()]
    }

    /// Total multiplier for a global slot: diurnal share × weekend factor ×
    /// weekly trend. Multiply by the city's daily volume to get the
    /// expected event count of the slot.
    pub fn slot_factor(&self, clock: &SlotClock, slot: SlotId) -> f64 {
        let day = clock.day_of(slot);
        let weekend = if clock.is_weekday(slot) {
            1.0
        } else {
            self.weekend_factor
        };
        let week = (day / 7) as f64;
        self.diurnal_weight(clock.slot_of_day(slot)) * weekend * self.weekly_trend.powf(week)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_weights_normalized() {
        let p = TemporalProfile::taxi_default(48);
        let total: f64 = (0..48).map(|s| p.diurnal_weight(s)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn default_profile_has_expected_shape() {
        let p = TemporalProfile::taxi_default(48);
        let night = p.diurnal_weight(8); // 4:00
        let morning = p.diurnal_weight(17); // 8:30
        let evening = p.diurnal_weight(37); // 18:30
        assert!(morning > 2.0 * night, "morning {morning} night {night}");
        assert!(evening > morning, "evening {evening} morning {morning}");
    }

    #[test]
    fn weekend_factor_applies_on_weekends_only() {
        let p = TemporalProfile::taxi_default(48).with_weekend_factor(0.5);
        let clock = SlotClock::default();
        let mon = p.slot_factor(&clock, clock.slot_at(0, 16));
        let sat = p.slot_factor(&clock, clock.slot_at(5, 16));
        assert!((sat / mon - 0.5).abs() < 1e-9);
    }

    #[test]
    fn weekly_trend_compounds() {
        let p = TemporalProfile::taxi_default(48).with_weekly_trend(1.1);
        let clock = SlotClock::default();
        let w0 = p.slot_factor(&clock, clock.slot_at(0, 16));
        let w2 = p.slot_factor(&clock, clock.slot_at(14, 16));
        assert!((w2 / w0 - 1.21).abs() < 1e-9);
    }

    #[test]
    fn custom_profile_normalizes_raw_weights() {
        let p = TemporalProfile::new(vec![2.0, 6.0], 1.0, 1.0);
        assert!((p.diurnal_weight(0) - 0.25).abs() < 1e-12);
        assert!((p.diurnal_weight(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_profile_rejected() {
        TemporalProfile::new(vec![], 1.0, 1.0);
    }
}
