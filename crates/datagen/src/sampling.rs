//! Exact Poisson sampling.
//!
//! Two regimes: Knuth's sequential inversion for small means (expected
//! `O(λ)` uniforms, exact) and Hörmann's PTRS transformed rejection for
//! `λ ≥ 10` (expected `O(1)` uniforms, exact). Implemented here rather than
//! pulled from `rand_distr` to keep the dependency set to the allowed list.

use gridtuner_core::poisson::ln_gamma;
use rand::Rng;

/// Threshold between the inversion and rejection regimes.
const PTRS_THRESHOLD: f64 = 10.0;

/// Draws one sample from `Pois(lambda)`. Exact for all `lambda ≥ 0`.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "Poisson mean must be finite and non-negative, got {lambda}"
    );
    if lambda == 0.0 {
        0
    } else if lambda < PTRS_THRESHOLD {
        sample_knuth(rng, lambda)
    } else {
        sample_ptrs(rng, lambda)
    }
}

/// Knuth's multiplication method: count uniforms until their product drops
/// below `e^{-λ}`.
fn sample_knuth<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    let limit = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

/// Hörmann's PTRS ("Poisson Transformed Rejection with Squeeze"), valid for
/// `λ ≥ 10`.
fn sample_ptrs<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    let ln_lambda = lambda.ln();
    let b = 0.931 + 2.53 * lambda.sqrt();
    let a = -0.059 + 0.024_83 * b;
    let inv_alpha = 1.123_9 + 1.132_8 / (b - 3.4);
    let v_r = 0.927_7 - 3.622_4 / (b - 2.0);
    loop {
        let u = rng.gen::<f64>() - 0.5;
        let v = rng.gen::<f64>();
        let us = 0.5 - u.abs();
        let k = ((2.0 * a / us + b) * u + lambda + 0.43).floor();
        if us >= 0.07 && v <= v_r {
            return k as u64;
        }
        if k < 0.0 || (us < 0.013 && v > us) {
            continue;
        }
        if (v * inv_alpha / (a / (us * us) + b)).ln() <= k * ln_lambda - lambda - ln_gamma(k + 1.0)
        {
            return k as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn stats(lambda: f64, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_poisson(&mut rng, lambda) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    #[test]
    fn zero_mean_is_always_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        }
    }

    #[test]
    fn knuth_regime_mean_and_variance() {
        for &lambda in &[0.3, 1.0, 4.2, 9.5] {
            let (mean, var) = stats(lambda, 60_000, 11);
            let se = (lambda / 60_000.0f64).sqrt();
            assert!((mean - lambda).abs() < 5.0 * se, "λ={lambda}: mean={mean}");
            assert!(
                (var - lambda).abs() < 0.05 * lambda + 5.0 * se,
                "λ={lambda}: var={var}"
            );
        }
    }

    #[test]
    fn ptrs_regime_mean_and_variance() {
        for &lambda in &[10.0, 42.0, 300.0, 5_000.0] {
            let (mean, var) = stats(lambda, 60_000, 23);
            let rel = (mean - lambda).abs() / lambda;
            assert!(rel < 0.01, "λ={lambda}: mean={mean}");
            assert!(
                (var - lambda).abs() / lambda < 0.05,
                "λ={lambda}: var={var}"
            );
        }
    }

    #[test]
    fn ptrs_matches_knuth_distribution_at_threshold() {
        // Both regimes at λ≈10 should produce statistically indistinguishable
        // tails; compare empirical P(X ≤ 10).
        let n = 120_000;
        let mut rng = StdRng::seed_from_u64(5);
        let below_knuth = (0..n)
            .filter(|_| sample_knuth(&mut rng, 9.99) <= 10)
            .count() as f64
            / n as f64;
        let below_ptrs = (0..n)
            .filter(|_| sample_ptrs(&mut rng, 10.01) <= 10)
            .count() as f64
            / n as f64;
        assert!(
            (below_knuth - below_ptrs).abs() < 0.01,
            "{below_knuth} vs {below_ptrs}"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for &lambda in &[0.5, 3.0, 77.0] {
            assert_eq!(
                sample_poisson(&mut a, lambda),
                sample_poisson(&mut b, lambda)
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mean_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        sample_poisson(&mut rng, -1.0);
    }
}
