//! Exact Poisson (and overdispersed negative-binomial) sampling.
//!
//! Two Poisson regimes: Knuth's sequential inversion for small means
//! (expected `O(λ)` uniforms, exact) and Hörmann's PTRS transformed
//! rejection for `λ ≥ 10` (expected `O(1)` uniforms, exact). Implemented
//! here rather than pulled from `rand_distr` to keep the dependency set to
//! the allowed list.
//!
//! [`sample_negative_binomial`] layers a Gamma–Poisson mixture on top for
//! the robustness harness's overdispersion knob: `Var = μ + φ·μ²`, with
//! `φ = 0` dispatching straight to [`sample_poisson`] so the knob's off
//! position is bit-identical to the Poisson seed path.

use gridtuner_core::poisson::ln_gamma;
use rand::Rng;

/// Threshold between the inversion and rejection regimes.
const PTRS_THRESHOLD: f64 = 10.0;

/// Draws one sample from `Pois(lambda)`. Exact for all `lambda ≥ 0`.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "Poisson mean must be finite and non-negative, got {lambda}"
    );
    if lambda == 0.0 {
        0
    } else if lambda < PTRS_THRESHOLD {
        sample_knuth(rng, lambda)
    } else {
        sample_ptrs(rng, lambda)
    }
}

/// Draws one overdispersed count with mean `mean` and variance
/// `mean + phi·mean²` — a negative binomial realised as the Gamma–Poisson
/// mixture `Pois(G)`, `G ~ Gamma(shape = 1/φ, scale = φ·mean)`.
///
/// `phi = 0` is the Poisson limit and is dispatched to [`sample_poisson`]
/// directly, consuming exactly the same uniforms — the knob's off
/// position changes no bit of any seeded stream.
pub fn sample_negative_binomial<R: Rng + ?Sized>(rng: &mut R, mean: f64, phi: f64) -> u64 {
    assert!(
        phi >= 0.0 && phi.is_finite(),
        "overdispersion must be finite and non-negative, got {phi}"
    );
    if phi == 0.0 || mean == 0.0 {
        return sample_poisson(rng, mean);
    }
    let shape = 1.0 / phi;
    let rate = sample_gamma(rng, shape) * phi * mean;
    sample_poisson(rng, rate)
}

/// Marsaglia–Tsang squeeze sampler for `Gamma(shape, 1)`; shapes below 1
/// are boosted via `G(a) = G(a + 1) · U^{1/a}`.
fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    debug_assert!(shape > 0.0 && shape.is_finite());
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u < 1.0 - 0.0331 * x * x * x * x {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// One standard normal via Box–Muller (the cosine branch).
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Knuth's multiplication method: count uniforms until their product drops
/// below `e^{-λ}`.
fn sample_knuth<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    let limit = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

/// Hörmann's PTRS ("Poisson Transformed Rejection with Squeeze"), valid for
/// `λ ≥ 10`.
fn sample_ptrs<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    let ln_lambda = lambda.ln();
    let b = 0.931 + 2.53 * lambda.sqrt();
    let a = -0.059 + 0.024_83 * b;
    let inv_alpha = 1.123_9 + 1.132_8 / (b - 3.4);
    let v_r = 0.927_7 - 3.622_4 / (b - 2.0);
    loop {
        let u = rng.gen::<f64>() - 0.5;
        let v = rng.gen::<f64>();
        let us = 0.5 - u.abs();
        let k = ((2.0 * a / us + b) * u + lambda + 0.43).floor();
        if us >= 0.07 && v <= v_r {
            return k as u64;
        }
        if k < 0.0 || (us < 0.013 && v > us) {
            continue;
        }
        if (v * inv_alpha / (a / (us * us) + b)).ln() <= k * ln_lambda - lambda - ln_gamma(k + 1.0)
        {
            return k as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn stats(lambda: f64, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_poisson(&mut rng, lambda) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    #[test]
    fn zero_mean_is_always_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        }
    }

    #[test]
    fn knuth_regime_mean_and_variance() {
        for &lambda in &[0.3, 1.0, 4.2, 9.5] {
            let (mean, var) = stats(lambda, 60_000, 11);
            let se = (lambda / 60_000.0f64).sqrt();
            assert!((mean - lambda).abs() < 5.0 * se, "λ={lambda}: mean={mean}");
            assert!(
                (var - lambda).abs() < 0.05 * lambda + 5.0 * se,
                "λ={lambda}: var={var}"
            );
        }
    }

    #[test]
    fn ptrs_regime_mean_and_variance() {
        for &lambda in &[10.0, 42.0, 300.0, 5_000.0] {
            let (mean, var) = stats(lambda, 60_000, 23);
            let rel = (mean - lambda).abs() / lambda;
            assert!(rel < 0.01, "λ={lambda}: mean={mean}");
            assert!(
                (var - lambda).abs() / lambda < 0.05,
                "λ={lambda}: var={var}"
            );
        }
    }

    #[test]
    fn ptrs_matches_knuth_distribution_at_threshold() {
        // Both regimes at λ≈10 should produce statistically indistinguishable
        // tails; compare empirical P(X ≤ 10).
        let n = 120_000;
        let mut rng = StdRng::seed_from_u64(5);
        let below_knuth = (0..n)
            .filter(|_| sample_knuth(&mut rng, 9.99) <= 10)
            .count() as f64
            / n as f64;
        let below_ptrs = (0..n)
            .filter(|_| sample_ptrs(&mut rng, 10.01) <= 10)
            .count() as f64
            / n as f64;
        assert!(
            (below_knuth - below_ptrs).abs() < 0.01,
            "{below_knuth} vs {below_ptrs}"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for &lambda in &[0.5, 3.0, 77.0] {
            assert_eq!(
                sample_poisson(&mut a, lambda),
                sample_poisson(&mut b, lambda)
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mean_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        sample_poisson(&mut rng, -1.0);
    }

    #[test]
    fn negative_binomial_zero_phi_is_bit_identical_to_poisson() {
        // The knob's off position must consume exactly the Poisson stream.
        for &mean in &[0.0, 0.7, 4.2, 25.0] {
            let mut nb = StdRng::seed_from_u64(314);
            let mut po = StdRng::seed_from_u64(314);
            for _ in 0..200 {
                assert_eq!(
                    sample_negative_binomial(&mut nb, mean, 0.0),
                    sample_poisson(&mut po, mean),
                    "φ=0 diverged from the Poisson path at μ={mean}"
                );
            }
            // The underlying generators must also be in lockstep afterwards.
            assert_eq!(nb.gen::<u64>(), po.gen::<u64>());
        }
    }

    #[test]
    fn negative_binomial_mean_and_variance() {
        let n = 60_000;
        for &(mean, phi) in &[(4.0, 0.5), (20.0, 0.25), (50.0, 0.1)] {
            let mut rng = StdRng::seed_from_u64(77);
            let samples: Vec<f64> = (0..n)
                .map(|_| sample_negative_binomial(&mut rng, mean, phi) as f64)
                .collect();
            let m = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1) as f64;
            let expected_var = mean + phi * mean * mean;
            assert!((m - mean).abs() / mean < 0.02, "μ={mean} φ={phi}: mean={m}");
            assert!(
                (var - expected_var).abs() / expected_var < 0.08,
                "μ={mean} φ={phi}: var={var} want≈{expected_var}"
            );
        }
    }

    #[test]
    fn negative_binomial_determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(404);
        let mut b = StdRng::seed_from_u64(404);
        for _ in 0..100 {
            assert_eq!(
                sample_negative_binomial(&mut a, 12.0, 0.3),
                sample_negative_binomial(&mut b, 12.0, 0.3)
            );
        }
    }

    #[test]
    #[should_panic(expected = "overdispersion")]
    fn negative_phi_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        sample_negative_binomial(&mut rng, 1.0, -0.1);
    }
}
