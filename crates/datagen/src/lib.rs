//! Synthetic spatiotemporal event generation.
//!
//! The paper evaluates on three proprietary taxi-trip datasets (NYC TLC,
//! DiDi GAIA Chengdu and Xi'an). This crate provides the documented
//! substitute: an **inhomogeneous spatiotemporal Poisson point process**
//! whose spatial intensity is a mixture of Gaussian hotspots, linear "road"
//! ridges and a uniform background, modulated over time by a diurnal
//! profile, a weekday/weekend factor and a weekly trend.
//!
//! Per-HGrid counts drawn from this process are Poisson by construction —
//! exactly the modelling assumption the paper's expression-error analysis
//! rests on (Sec. III-B) — and the three presets in [`city`] are calibrated
//! to the paper's appendix: daily order volumes of ≈282k/239k/110k and the
//! spatial-unevenness ordering NYC > Chengdu > Xi'an.
//!
//! For robustness experiments the Poisson/stationary assumptions can be
//! broken on purpose: [`City::with_overdispersion`] swaps counts to a
//! negative binomial (`Var = μ + φ·μ²`) and [`City::with_drift`]
//! translates the hotspots a little further each day while the analytic
//! mean field stays stationary. Both knobs default to 0 and are
//! bit-identical to the plain path when off.
//!
//! Modules:
//!
//! * [`sampling`] — exact Poisson sampling (Knuth inversion for small
//!   means, Hörmann's PTRS transformed rejection for large) plus the
//!   Gamma–Poisson negative binomial for the overdispersion knob;
//! * [`intensity`] — spatial intensity fields: density evaluation, exact
//!   point sampling, and per-cell integration;
//! * [`temporal`] — diurnal/weekly demand profiles;
//! * [`city`] — the dataset presets and the generation API (gridded count
//!   series for model training, point events for α estimation and
//!   evaluation);
//! * [`trips`] — full trip records (drop-off + revenue) for the dispatch
//!   case study.

pub mod city;
pub mod intensity;
pub mod sampling;
pub mod temporal;
pub mod trips;

pub use city::{City, DataSplit, UnknownCity};
pub use intensity::IntensityField;
pub use sampling::{sample_negative_binomial, sample_poisson};
pub use temporal::TemporalProfile;
pub use trips::TripGenerator;
