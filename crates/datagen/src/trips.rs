//! Trip records for the dispatch case study.
//!
//! Pick-ups come from the city's event process; drop-offs mix
//! destination-popularity draws (people go where demand is) with local
//! displacements (short hops), reproducing the paper's Fig. 11 shape:
//! most trips well under half the city diameter, with a heavier local mass
//! in the smaller Xi'an. Revenue follows a taxi meter: base fare plus a
//! per-kilometre rate on the straight-line distance.

use crate::city::City;
use gridtuner_spatial::{Event, GeoBounds, Point, TripRecord};
use rand::Rng;

/// Turns pick-up events into full trip records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripGenerator {
    /// Base fare added to every trip.
    pub base_fare: f64,
    /// Revenue per kilometre of straight-line trip length.
    pub per_km: f64,
    /// Probability of drawing the drop-off from the destination-popularity
    /// field (vs a local displacement).
    pub dest_mix: f64,
    /// Standard deviation (unit coordinates) of the local displacement.
    pub local_sigma: f64,
}

impl Default for TripGenerator {
    fn default() -> Self {
        TripGenerator {
            base_fare: 2.5,
            per_km: 1.8,
            dest_mix: 0.65,
            local_sigma: 0.08,
        }
    }
}

impl TripGenerator {
    /// Builds trips from given pick-up events.
    pub fn trips_from_events<R: Rng + ?Sized>(
        &self,
        city: &City,
        events: &[Event],
        rng: &mut R,
    ) -> Vec<TripRecord> {
        events
            .iter()
            .map(|e| {
                let dropoff = self.sample_dropoff(city, &e.loc, rng);
                let km = city.geo().dist_km(&e.loc, &dropoff);
                TripRecord {
                    pickup: e.loc,
                    dropoff,
                    minute: e.minute,
                    revenue: self.base_fare + self.per_km * km,
                }
            })
            .collect()
    }

    /// Samples a full day of trips.
    pub fn trips_for_day<R: Rng + ?Sized>(
        &self,
        city: &City,
        day: u32,
        rng: &mut R,
    ) -> Vec<TripRecord> {
        let events = city.sample_day_events(day, rng);
        self.trips_from_events(city, &events, rng)
    }

    fn sample_dropoff<R: Rng + ?Sized>(&self, city: &City, pickup: &Point, rng: &mut R) -> Point {
        if rng.gen::<f64>() < self.dest_mix {
            city.intensity().sample_point(rng)
        } else {
            // Local displacement, clamped into the map.
            let (gx, gy) = {
                let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen();
                let r = (-2.0 * u1.ln()).sqrt();
                let t = 2.0 * std::f64::consts::PI * u2;
                (r * t.cos(), r * t.sin())
            };
            Point::new(
                pickup.x + self.local_sigma * gx,
                pickup.y + self.local_sigma * gy,
            )
            .clamp_unit()
        }
    }
}

/// Histogram of trip lengths in kilometres with `bin_km`-wide bins up to
/// `max_km` (the last bin collects the overflow) — the data behind Fig. 11.
pub fn length_histogram(
    trips: &[TripRecord],
    geo: &GeoBounds,
    bin_km: f64,
    max_km: f64,
) -> Vec<(f64, usize)> {
    assert!(bin_km > 0.0 && max_km > bin_km, "invalid histogram bins");
    let n_bins = (max_km / bin_km).ceil() as usize;
    let mut bins = vec![0usize; n_bins + 1];
    for t in trips {
        let km = geo.dist_km(&t.pickup, &t.dropoff);
        let idx = ((km / bin_km) as usize).min(n_bins);
        bins[idx] += 1;
    }
    bins.into_iter()
        .enumerate()
        .map(|(i, c)| (i as f64 * bin_km, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn small_city() -> City {
        City::xian().scaled(0.01)
    }

    #[test]
    fn trips_preserve_pickup_fields() {
        let city = small_city();
        let mut rng = StdRng::seed_from_u64(2);
        let events = city.sample_slot_events(city.clock().slot_at(0, 17), &mut rng);
        let trips = TripGenerator::default().trips_from_events(&city, &events, &mut rng);
        assert_eq!(trips.len(), events.len());
        for (t, e) in trips.iter().zip(&events) {
            assert_eq!(t.pickup, e.loc);
            assert_eq!(t.minute, e.minute);
            assert!(t.dropoff.in_unit_square());
        }
    }

    #[test]
    fn revenue_is_affine_in_distance() {
        let city = small_city();
        let gen = TripGenerator {
            base_fare: 3.0,
            per_km: 2.0,
            ..TripGenerator::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let trips = gen.trips_for_day(&city, 0, &mut rng);
        assert!(!trips.is_empty());
        for t in &trips {
            let km = city.geo().dist_km(&t.pickup, &t.dropoff);
            assert!((t.revenue - (3.0 + 2.0 * km)).abs() < 1e-9);
            assert!(t.revenue >= 3.0);
        }
    }

    #[test]
    fn most_trips_are_short() {
        // Fig. 11: trips concentrate well below the city diameter.
        let city = City::nyc().scaled(0.005);
        let mut rng = StdRng::seed_from_u64(7);
        let trips = TripGenerator::default().trips_for_day(&city, 0, &mut rng);
        let hist = length_histogram(&trips, city.geo(), 5.0, 45.0);
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        let below_15: usize = hist
            .iter()
            .filter(|&&(lo, _)| lo < 15.0)
            .map(|&(_, c)| c)
            .sum();
        assert_eq!(total, trips.len());
        assert!(
            below_15 as f64 > 0.6 * total as f64,
            "short-trip share too low: {below_15}/{total}"
        );
    }

    #[test]
    fn histogram_overflow_bin_collects_tail() {
        let city = small_city();
        let mut rng = StdRng::seed_from_u64(11);
        let trips = TripGenerator::default().trips_for_day(&city, 0, &mut rng);
        let hist = length_histogram(&trips, city.geo(), 1.0, 3.0);
        assert_eq!(hist.len(), 4);
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, trips.len());
    }

    #[test]
    #[should_panic(expected = "invalid histogram")]
    fn bad_bins_rejected() {
        length_histogram(&[], &GeoBounds::nyc(), 0.0, 10.0);
    }
}
