//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the small API subset the workspace actually uses — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`] and [`seq::SliceRandom`] — backed by
//! the xoshiro256** generator (public domain, Blackman & Vigna). Streams
//! are deterministic per seed but do **not** match upstream `rand`'s
//! ChaCha-based `StdRng`; nothing in the workspace depends on the exact
//! stream, only on seeded reproducibility.

pub mod rngs;
pub mod seq;

/// Uniform-random generation of a value of `Self` (the role of upstream's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A scalar [`Rng::gen_range`] can produce. The blanket [`SampleRange`]
/// impls below tie a range's element type to the output type, which is
/// what keeps call-site inference unambiguous (mirroring upstream).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range in gen_range");
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi },
                        "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// A range that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(lo, hi, true, rng)
    }
}

/// Raw 64-bit generator output.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T` (floats in [0, 1)).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding (upstream's trait, reduced to what's used here).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The common imports.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            acc += v;
        }
        // Mean of 10k uniforms must be close to 0.5.
        assert!((acc / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_covers_integer_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
