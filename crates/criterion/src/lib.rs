//! Workspace-local stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!` / `criterion_main!` macros — as a small wall-clock
//! harness: each benchmark is warmed up once, then timed over adaptive
//! batches until the measurement budget is spent, and the per-iteration
//! mean / min are printed. No statistics, plots or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Identifier for a parameterised benchmark: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare id without a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
    min_iter: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            budget,
            min_iter: Duration::MAX,
        }
    }

    /// Times `f`, repeating until the measurement budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (not counted).
        black_box(f());
        loop {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            self.elapsed += dt;
            self.iters_done += 1;
            self.min_iter = self.min_iter.min(dt);
            if self.elapsed >= self.budget || self.iters_done >= 10_000 {
                break;
            }
        }
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters_done == 0 {
        println!("{name:<40} (no measurements)");
        return;
    }
    let mean = b.elapsed / b.iters_done as u32;
    println!(
        "{name:<40} mean {mean:>12.3?}  min {:>12.3?}  ({} iters)",
        b.min_iter, b.iters_done
    );
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes sample counts; this harness only keeps the time
    /// budget, so the value is accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
    }

    /// Runs a parameterised benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher::new(self.budget);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: self.budget,
            _parent: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(name, &b);
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10).measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.bench_with_input(BenchmarkId::new("id", 3), &3u32, |b, &k| b.iter(|| k * 2));
        g.finish();
        assert!(ran > 1, "iter should repeat within the budget");
    }
}
