//! Dispatch case study wiring: predictions at different grid sizes feed
//! POLAR / LS / DAIF and move their metrics in the paper's direction.

use gridtuner::datagen::{City, TripGenerator};
use gridtuner::dispatch::daif::DaifConfig;
use gridtuner::dispatch::{Daif, DemandView, FleetConfig, Ls, Order, Polar, SimConfig, Simulator};
use gridtuner::spatial::{Partition, SlotId};
use rand::{rngs::StdRng, SeedableRng};

fn test_day_orders(city: &City, seed: u64) -> Vec<Order> {
    let mut rng = StdRng::seed_from_u64(seed);
    let trips = TripGenerator::default().trips_for_day(city, 0, &mut rng);
    Order::from_trips(&trips)
}

/// Ground-truth mean demand spread from a given MGrid resolution — the
/// "perfect model at grid size s" view.
fn demand_at_resolution(
    city: &City,
    side: u32,
    budget: u32,
) -> impl FnMut(SlotId) -> DemandView + '_ {
    let partition = Partition::for_budget(side, budget);
    move |slot| {
        let mgrid = city.mean_field(partition.mgrid_spec(), slot);
        DemandView::from_mgrid(&mgrid, &partition)
    }
}

#[test]
fn polar_serves_most_orders_with_ample_fleet() {
    let city = City::xian().scaled(0.004); // ~440 orders
    let orders = test_day_orders(&city, 1);
    assert!(
        orders.len() > 100,
        "need a meaningful day: {}",
        orders.len()
    );
    let sim = Simulator::new(SimConfig {
        fleet: FleetConfig {
            n_drivers: 400,
            ..FleetConfig::default()
        },
        geo: *city.geo(),
        unserved_penalty_km: 10.0,
    });
    let mut demand = demand_at_resolution(&city, 8, 32);
    let out = sim.run(&orders, &mut Polar::new(), &mut demand);
    assert!(
        out.service_rate() > 0.8,
        "ample fleet should serve most orders: {out:?}"
    );
    assert!(out.revenue > 0.0);
}

#[test]
fn finer_demand_view_helps_polar_when_model_is_perfect() {
    // With ground-truth demand (zero model error), the real error equals
    // the expression error, which shrinks with n — so POLAR with the fine
    // view must not serve fewer orders than with the n=1 view (the paper's
    // "real order data" curves keep rising with n).
    let city = City::nyc().scaled(0.004);
    let orders = test_day_orders(&city, 2);
    let sim = Simulator::new(SimConfig {
        fleet: FleetConfig {
            n_drivers: 120,
            ..FleetConfig::default()
        },
        geo: *city.geo(),
        unserved_penalty_km: 10.0,
    });
    let coarse = sim.run(
        &orders,
        &mut Polar::new(),
        &mut demand_at_resolution(&city, 1, 32),
    );
    let fine = sim.run(
        &orders,
        &mut Polar::new(),
        &mut demand_at_resolution(&city, 16, 32),
    );
    assert!(
        fine.served as f64 >= coarse.served as f64 * 0.98,
        "fine view must not lose orders: fine {} vs coarse {}",
        fine.served,
        coarse.served
    );
}

#[test]
fn ls_collects_more_revenue_than_blind_dispatch() {
    // LS with a real demand view vs LS with an all-zero view (no future
    // value signal): the informed one must not earn less.
    let city = City::chengdu().scaled(0.004);
    let orders = test_day_orders(&city, 3);
    let sim = Simulator::new(SimConfig {
        fleet: FleetConfig {
            n_drivers: 80,
            ..FleetConfig::default()
        },
        geo: *city.geo(),
        unserved_penalty_km: 10.0,
    });
    let informed = sim.run(
        &orders,
        &mut Ls::new(),
        &mut demand_at_resolution(&city, 8, 32),
    );
    let side = Partition::for_budget(8, 32).hgrid_spec().side();
    let blind = sim.run(&orders, &mut Ls::new(), &mut |_| {
        DemandView::from_hgrid(gridtuner::spatial::CountMatrix::zeros(side))
    });
    assert!(
        informed.revenue >= blind.revenue * 0.95,
        "informed {} vs blind {}",
        informed.revenue,
        blind.revenue
    );
    assert!(informed.served > 0 && blind.served > 0);
}

#[test]
fn daif_runs_a_full_day_and_reports_unified_cost() {
    let city = City::xian().scaled(0.002);
    let orders = test_day_orders(&city, 4);
    let daif = Daif::new(DaifConfig {
        n_workers: 120,
        ..DaifConfig::default()
    });
    let mut demand = demand_at_resolution(&city, 8, 32);
    let out = daif.run(city.geo(), &orders, &mut demand);
    assert!(out.served > 0, "DAIF must serve something: {out:?}");
    assert!(out.served <= out.total_orders);
    let expected = out.travel_km + 10.0 * (out.total_orders - out.served) as f64;
    assert!((out.unified_cost - expected).abs() < 1e-6);
}
