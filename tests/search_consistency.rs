//! Search algorithms against realistic upper-bound curves: Table IV's
//! qualitative claims, cross-crate.

use gridtuner::core::alpha::AlphaWindow;
use gridtuner::core::search::{
    brute_force, iterative_method, ternary_search, ErrorOracle, MemoOracle,
};
use gridtuner::core::upper_bound::UpperBoundOracle;
use gridtuner::datagen::City;
use rand::{rngs::StdRng, SeedableRng};

/// A realistic (jagged, roughly U-shaped) oracle: analytic expression error
/// of a preset city plus a quadratic model-error surrogate.
fn city_oracle(city: City, coef: f64) -> impl ErrorOracle {
    let mut rng = StdRng::seed_from_u64(4);
    let events = city.sample_history_events(16, 0..14, &mut rng);
    let clock = *city.clock();
    let window = AlphaWindow {
        slot_of_day: 16,
        day_start: 0,
        day_end: 14,
        weekdays_only: true,
    };
    UpperBoundOracle::new(events, clock, window, 64, move |s: u32| {
        (s * s) as f64 * coef
    })
}

#[test]
fn heuristics_beat_brute_force_on_evaluations() {
    let city = City::chengdu().scaled(0.05);
    let bf = brute_force(city_oracle(city.clone(), 1.0), 2, 32);
    let ts = ternary_search(city_oracle(city.clone(), 1.0), 2, 32);
    let it = iterative_method(city_oracle(city, 1.0), 2, 32, 16, 4);
    assert_eq!(bf.evals, 31);
    assert!(ts.evals < bf.evals / 2, "ternary evals {}", ts.evals);
    assert!(it.evals < bf.evals, "iterative evals {}", it.evals);
    // Optimal-ratio style check on the error values (Table IV: ≥ 97%).
    assert!(ts.error <= bf.error * 1.10, "{} vs {}", ts.error, bf.error);
    assert!(it.error <= bf.error * 1.10, "{} vs {}", it.error, bf.error);
}

#[test]
fn per_slot_optima_vary_across_the_day() {
    // Fig. 18: different time slots have different optimal n because the
    // α field (and total volume) changes. Compare the morning-peak slot to
    // a night slot: the optimum differs or at least both are interior.
    let city = City::nyc().scaled(0.05);
    let clock = *city.clock();
    let mut optima = Vec::new();
    for sod in [4u32, 16] {
        let mut rng = StdRng::seed_from_u64(8);
        let events = city.sample_history_events(sod, 0..14, &mut rng);
        let window = AlphaWindow {
            slot_of_day: sod,
            day_start: 0,
            day_end: 14,
            weekdays_only: true,
        };
        let oracle =
            UpperBoundOracle::new(events, clock, window, 64, |s: u32| (s * s) as f64 * 0.6);
        let out = brute_force(oracle, 1, 28);
        assert!(out.side >= 1 && out.side <= 28);
        optima.push((sod, out.side));
    }
    // The busy morning slot supports at least as fine a grid as the quiet
    // night slot (more data ⇒ larger optimal n).
    assert!(
        optima[1].1 >= optima[0].1,
        "morning optimum should not be coarser: {optima:?}"
    );
}

#[test]
fn memoization_shares_work_across_strategies() {
    let city = City::xian().scaled(0.05);
    let mut memo = MemoOracle::new(city_oracle(city, 1.0));
    let a = memo.eval(10);
    let b = memo.eval(10);
    assert_eq!(a, b);
    assert_eq!(memo.unique_evals(), 1);
}

// ---------------------------------------------------------------------------
// Property tests on fuzzed curves, and the documented plateau/tie semantics.
// ---------------------------------------------------------------------------

use rand::Rng;

/// A strictly unimodal curve over sides `1..=hi` with its argmin; values
/// are drawn from a continuous range so exact ties have measure zero.
fn random_unimodal(rng: &mut StdRng) -> (Vec<f64>, u32) {
    let hi = rng.gen_range(3..=70u32);
    let t = rng.gen_range(1..=hi);
    let mut v = vec![0.0f64; hi as usize + 1];
    v[t as usize] = rng.gen_range(0.0..5.0);
    for s in (1..t).rev() {
        v[s as usize] = v[s as usize + 1] + rng.gen_range(1e-6..1.0);
    }
    for s in t + 1..=hi {
        v[s as usize] = v[s as usize - 1] + rng.gen_range(1e-6..1.0);
    }
    (v, t)
}

#[test]
fn ternary_finds_the_optimum_on_fuzzed_unimodal_curves() {
    let mut rng = StdRng::seed_from_u64(0x7e24);
    for _ in 0..200 {
        let (curve, t) = random_unimodal(&mut rng);
        let hi = curve.len() as u32 - 1;
        let out = ternary_search(|s: u32| curve[s as usize], 1, hi);
        assert_eq!(
            out.side, t,
            "curve with argmin {t}: ternary found {}",
            out.side
        );
        assert_eq!(out.error.to_bits(), curve[t as usize].to_bits());
    }
}

#[test]
fn iterative_finds_the_optimum_on_fuzzed_unimodal_curves() {
    let mut rng = StdRng::seed_from_u64(0x17e2);
    for _ in 0..200 {
        let (curve, t) = random_unimodal(&mut rng);
        let hi = curve.len() as u32 - 1;
        let init = rng.gen_range(1..=hi);
        let bound = rng.gen_range(1..=5u32);
        let out = iterative_method(|s: u32| curve[s as usize], 1, hi, init, bound);
        assert_eq!(
            out.side, t,
            "init {init} bound {bound}: stopped at {} not {t}",
            out.side
        );
    }
}

#[test]
fn brute_force_ties_break_toward_the_smaller_side() {
    // Minimum plateau over sides 3..=5: the canonical rule is left-most.
    let curve = [f64::NAN, 4.0, 2.0, 1.0, 1.0, 1.0, 3.0];
    let out = brute_force(|s: u32| curve[s as usize], 1, 6);
    assert_eq!(out.side, 3);
    assert_eq!(out.error, 1.0);
}

#[test]
fn ternary_returns_a_true_minimiser_on_minimum_plateaus() {
    // Ties discard the right interval, so ternary drifts left; on a curve
    // whose only flat region IS the minimum it still lands on the plateau
    // (though not necessarily its left edge).
    let curve = [f64::NAN, 6.0, 4.0, 1.0, 1.0, 1.0, 1.0, 2.0, 5.0];
    let out = ternary_search(|s: u32| curve[s as usize], 1, 8);
    assert!((3..=6).contains(&out.side), "side {} off-plateau", out.side);
    assert_eq!(out.error, 1.0);
}

/// The failure mode the `ternary_search` docs warn about: a flat shoulder
/// *away* from the minimum makes the tie rule discard the interval that
/// holds the real optimum. Pinned so the behaviour (and its docs) cannot
/// drift silently.
#[test]
fn ternary_can_be_misled_by_shoulder_plateaus() {
    //            side:   1    2    3    4    5    6    7    8    9
    let curve = [f64::NAN, 9.0, 8.0, 5.0, 5.0, 5.0, 5.0, 5.0, 0.0, 1.0];
    let brute = brute_force(|s: u32| curve[s as usize], 1, 9);
    assert_eq!(brute.side, 8, "the true optimum sits past the shoulder");
    let out = ternary_search(|s: u32| curve[s as usize], 1, 9);
    // First round probes sides 3 and 7; the 5.0 == 5.0 tie discards
    // (7, 9] — and side 8 with it. The search then settles on the shoulder.
    assert_eq!(out.side, 3, "documented shoulder-plateau behaviour changed");
    assert_eq!(out.error, 5.0);
    assert!(out.error > brute.error);
}

#[test]
fn iterative_stays_put_on_flat_curves() {
    // Strict-improvement descent: a constant curve never moves the point.
    for init in [1u32, 5, 9] {
        let out = iterative_method(|_s: u32| 2.5, 1, 9, init, 3);
        assert_eq!(out.side, init);
        assert_eq!(out.error, 2.5);
    }
}
