//! Search algorithms against realistic upper-bound curves: Table IV's
//! qualitative claims, cross-crate.

use gridtuner::core::alpha::AlphaWindow;
use gridtuner::core::search::{
    brute_force, iterative_method, ternary_search, ErrorOracle, MemoOracle,
};
use gridtuner::core::upper_bound::UpperBoundOracle;
use gridtuner::datagen::City;
use rand::{rngs::StdRng, SeedableRng};

/// A realistic (jagged, roughly U-shaped) oracle: analytic expression error
/// of a preset city plus a quadratic model-error surrogate.
fn city_oracle(city: City, coef: f64) -> impl ErrorOracle {
    let mut rng = StdRng::seed_from_u64(4);
    let events = city.sample_history_events(16, 0..14, &mut rng);
    let clock = *city.clock();
    let window = AlphaWindow {
        slot_of_day: 16,
        day_start: 0,
        day_end: 14,
        weekdays_only: true,
    };
    UpperBoundOracle::new(events, clock, window, 64, move |s: u32| {
        (s * s) as f64 * coef
    })
}

#[test]
fn heuristics_beat_brute_force_on_evaluations() {
    let city = City::chengdu().scaled(0.05);
    let bf = brute_force(city_oracle(city.clone(), 1.0), 2, 32);
    let ts = ternary_search(city_oracle(city.clone(), 1.0), 2, 32);
    let it = iterative_method(city_oracle(city, 1.0), 2, 32, 16, 4);
    assert_eq!(bf.evals, 31);
    assert!(ts.evals < bf.evals / 2, "ternary evals {}", ts.evals);
    assert!(it.evals < bf.evals, "iterative evals {}", it.evals);
    // Optimal-ratio style check on the error values (Table IV: ≥ 97%).
    assert!(ts.error <= bf.error * 1.10, "{} vs {}", ts.error, bf.error);
    assert!(it.error <= bf.error * 1.10, "{} vs {}", it.error, bf.error);
}

#[test]
fn per_slot_optima_vary_across_the_day() {
    // Fig. 18: different time slots have different optimal n because the
    // α field (and total volume) changes. Compare the morning-peak slot to
    // a night slot: the optimum differs or at least both are interior.
    let city = City::nyc().scaled(0.05);
    let clock = *city.clock();
    let mut optima = Vec::new();
    for sod in [4u32, 16] {
        let mut rng = StdRng::seed_from_u64(8);
        let events = city.sample_history_events(sod, 0..14, &mut rng);
        let window = AlphaWindow {
            slot_of_day: sod,
            day_start: 0,
            day_end: 14,
            weekdays_only: true,
        };
        let oracle =
            UpperBoundOracle::new(events, clock, window, 64, |s: u32| (s * s) as f64 * 0.6);
        let out = brute_force(oracle, 1, 28);
        assert!(out.side >= 1 && out.side <= 28);
        optima.push((sod, out.side));
    }
    // The busy morning slot supports at least as fine a grid as the quiet
    // night slot (more data ⇒ larger optimal n).
    assert!(
        optima[1].1 >= optima[0].1,
        "morning optimum should not be coarser: {optima:?}"
    );
}

#[test]
fn memoization_shares_work_across_strategies() {
    let city = City::xian().scaled(0.05);
    let mut memo = MemoOracle::new(city_oracle(city, 1.0));
    let a = memo.eval(10);
    let b = memo.eval(10);
    assert_eq!(a, b);
    assert_eq!(memo.unique_evals(), 1);
}
