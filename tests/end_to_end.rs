//! End-to-end pipeline: synthetic city → α estimation → upper-bound oracle
//! with a real (retrained-per-n) predictor → search → sane partition.

use gridtuner::core::alpha::AlphaWindow;
use gridtuner::core::tuner::{GridTuner, SearchStrategy, TunerConfig};
use gridtuner::core::upper_bound::{ModelErrorFn, UpperBoundOracle};
use gridtuner::datagen::{City, DataSplit};
use gridtuner::predict::{CityModelError, HistoricalAverage, Predictor};
use rand::{rngs::StdRng, SeedableRng};

fn small_city() -> City {
    City::xian().scaled(0.02)
}

fn split() -> DataSplit {
    DataSplit {
        train_days: (0, 14),
        val_days: (14, 16),
        test_day: 16,
    }
}

fn model_oracle() -> impl ModelErrorFn {
    CityModelError::new(small_city(), split(), 5, || {
        Box::new(HistoricalAverage::new()) as Box<dyn Predictor>
    })
    .with_max_eval_slots(12)
}

#[test]
fn tuner_produces_interior_optimum_on_uneven_city() {
    let city = small_city();
    let mut rng = StdRng::seed_from_u64(1);
    let events = city.sample_history_events(16, 0..14, &mut rng);
    let tuner = GridTuner::new(TunerConfig {
        hgrid_budget_side: 32,
        side_range: (1, 20),
        strategy: SearchStrategy::BruteForce,
        alpha_window: AlphaWindow {
            slot_of_day: 16,
            day_start: 0,
            day_end: 14,
            weekdays_only: true,
        },
    });
    let result = tuner.tune(&events, *city.clock(), model_oracle());
    // The optimum must be strictly inside the range: the error curve is
    // U-shaped (Sec. III-C).
    assert!(
        result.outcome.side > 1 && result.outcome.side < 20,
        "boundary optimum at side {}",
        result.outcome.side
    );
    assert_eq!(result.partition.mgrid_side(), result.outcome.side);
    assert!(result.partition.total_hgrids() >= 32 * 32);
}

#[test]
fn upper_bound_oracle_decomposition_is_consistent() {
    let city = small_city();
    let mut rng = StdRng::seed_from_u64(2);
    let events = city.sample_history_events(16, 0..14, &mut rng);
    let window = AlphaWindow {
        slot_of_day: 16,
        day_start: 0,
        day_end: 14,
        weekdays_only: true,
    };
    let mut oracle = UpperBoundOracle::new(events, *city.clock(), window, 32, model_oracle());
    for side in [2u32, 8, 16] {
        let e = gridtuner::core::search::ErrorOracle::eval(&mut oracle, side);
        let expr = oracle.expression_error(side);
        let model = oracle.model_error(side);
        assert!(
            (e - (expr + model)).abs() < 1e-6,
            "decomposition broken at side {side}"
        );
        assert!(expr >= 0.0 && model >= 0.0);
    }
    // Monotone legs (the paper's core tension).
    assert!(oracle.expression_error(2) > oracle.expression_error(16));
    assert!(oracle.model_error(16) > oracle.model_error(2));
}

#[test]
fn heuristic_searches_close_to_brute_force_end_to_end() {
    let city = small_city();
    let mut rng = StdRng::seed_from_u64(3);
    let events = city.sample_history_events(16, 0..14, &mut rng);
    let cfg = |strategy| TunerConfig {
        hgrid_budget_side: 32,
        side_range: (1, 20),
        strategy,
        alpha_window: AlphaWindow {
            slot_of_day: 16,
            day_start: 0,
            day_end: 14,
            weekdays_only: true,
        },
    };
    let clock = *city.clock();
    let bf = GridTuner::new(cfg(SearchStrategy::BruteForce)).tune(&events, clock, model_oracle());
    let it = GridTuner::new(cfg(SearchStrategy::Iterative { init: 16, bound: 4 })).tune(
        &events,
        clock,
        model_oracle(),
    );
    assert!(
        it.outcome.error <= bf.outcome.error * 1.10,
        "iterative {} vs brute {}",
        it.outcome.error,
        bf.outcome.error
    );
    assert!(it.outcome.evals < bf.outcome.evals);
}
