//! Cross-crate validation of the error decomposition: empirical errors
//! measured on sampled data vs the analytic Poisson expression error.

use gridtuner::core::errors::{evaluate_errors, ErrorSample};
use gridtuner::core::expression::total_expression_error;
use gridtuner::datagen::City;
use gridtuner::predict::{HistoricalAverage, Predictor};
use gridtuner::spatial::{Partition, SlotId};
use rand::{rngs::StdRng, SeedableRng};

/// Sample HGrid-lattice counts for several evaluation slots, predict with
/// HA at the MGrid lattice, and return the error samples.
fn build_samples(city: &City, partition: &Partition, n_days: u32, seed: u64) -> Vec<ErrorSample> {
    let clock = *city.clock();
    let mut rng = StdRng::seed_from_u64(seed);
    let horizon = (n_days * clock.slots_per_day()) as usize;
    let hseries = city.sample_count_series(partition.hgrid_spec(), horizon, &mut rng);
    let mseries = hseries
        .coarsen(partition.sub_side())
        .expect("hgrid lattice is divisible by the sub side");
    let mut ha = HistoricalAverage::new();
    let train_days = n_days - 1;
    ha.fit(&mseries, &clock, clock.slot_at(train_days, 0));
    // Evaluate on the last day's morning slots.
    (14..20u32)
        .map(|sod| {
            let slot = clock.slot_at(train_days, sod);
            ErrorSample {
                predicted_mgrid: ha.predict(&mseries, &clock, slot),
                actual_hgrid: hseries.slot_matrix(slot),
            }
        })
        .collect()
}

#[test]
fn theorem_ii1_holds_on_sampled_city_data() {
    let city = City::chengdu().scaled(0.02);
    for (s, q) in [(4u32, 8u32), (8, 4), (16, 2)] {
        let partition = Partition::new(s, q);
        let samples = build_samples(&city, &partition, 10, 17);
        let report = evaluate_errors(&samples, &partition).unwrap();
        assert!(
            report.real <= report.upper_bound() + 1e-9,
            "Theorem II.1 violated at {s}x{s}: {report:?}"
        );
        assert!(
            report.upper_bound() - report.real <= 2.0 * report.model.min(report.expression) + 1e-9,
            "slack bound violated at {s}x{s}: {report:?}"
        );
        assert!(report.real > 0.0, "sampled data cannot be error-free");
    }
}

#[test]
fn analytic_expression_error_tracks_empirical() {
    // The analytic E_e from the α field must approximate the empirical
    // expression error measured on freshly sampled slots (same Poisson
    // process), within Monte-Carlo slack.
    let city = City::nyc().scaled(0.02);
    let partition = Partition::new(8, 4);
    let clock = *city.clock();
    // Analytic: α = the true mean field at slot-of-day 16 on a weekday.
    let alpha = city.mean_field(partition.hgrid_spec(), clock.slot_at(9, 16));
    let analytic = total_expression_error(&alpha, &partition);
    // Empirical: average over sampled weekday slots at the same
    // slot-of-day (perfect-model setup ⇒ real error = expression error).
    let mut rng = StdRng::seed_from_u64(23);
    let horizon = 48 * 12;
    let hseries = city.sample_count_series(partition.hgrid_spec(), horizon, &mut rng);
    let mut acc = 0.0;
    let mut n = 0;
    for day in 0..12u32 {
        let slot = clock.slot_at(day, 16);
        if !clock.is_weekday(slot) {
            continue;
        }
        let actual = hseries.slot_matrix(slot);
        let spread = actual
            .to_mgrid(&partition)
            .unwrap()
            .to_hgrid(&partition)
            .unwrap();
        acc += spread.l1_distance(&actual).unwrap();
        n += 1;
    }
    let empirical = acc / n as f64;
    let rel = (analytic - empirical).abs() / empirical;
    assert!(
        rel < 0.15,
        "analytic {analytic:.1} vs empirical {empirical:.1} (rel {rel:.3})"
    );
}

#[test]
fn expression_error_ordering_across_cities() {
    // Fig. 3's city ordering at the paper's full volumes: NYC > Chengdu >
    // Xi'an. (The ordering needs the dense-count regime; at tiny volumes
    // Poisson sparsity compresses the differences — see EXPERIMENTS.md.)
    let partition = Partition::new(8, 4);
    let mut errs = Vec::new();
    for city in City::all_presets() {
        let clock = *city.clock();
        let alpha = city.mean_field(partition.hgrid_spec(), clock.slot_at(9, 16));
        errs.push((
            city.name().to_string(),
            total_expression_error(&alpha, &partition),
        ));
    }
    assert!(
        errs[0].1 > errs[1].1 && errs[1].1 > errs[2].1,
        "city ordering broken: {errs:?}"
    );
}

#[test]
fn expression_error_decreases_with_n_on_all_presets() {
    for city in City::all_presets() {
        let city = city.scaled(0.02);
        let clock = *city.clock();
        let mut prev = f64::INFINITY;
        for s in [1u32, 2, 4, 8, 16] {
            let partition = Partition::for_budget(s, 32);
            let alpha = city.mean_field(partition.hgrid_spec(), clock.slot_at(9, 16));
            let e = total_expression_error(&alpha, &partition);
            assert!(
                e <= prev * 1.05 + 1e-9,
                "{}: expression error rose sharply at s={s}: {e} > {prev}",
                city.name()
            );
            prev = e;
        }
    }
}

#[test]
fn slot_id_sanity_for_test_harness() {
    // Guard against off-by-one drift between harness slot arithmetic and
    // the spatial clock (a regression here silently shifts every window).
    let clock = gridtuner::spatial::SlotClock::default();
    assert_eq!(clock.slot_at(9, 16), SlotId(9 * 48 + 16));
}
