//! Property-based tests (proptest) on the workspace's core invariants.

use gridtuner::core::errors::{evaluate_errors, ErrorSample};
use gridtuner::core::expression::{
    expression_error_alg1, expression_error_alg2, expression_error_windowed, lemma_upper_bound,
};
use gridtuner::core::poisson::{mass_window, poisson_mad, poisson_pmf_into};
use gridtuner::spatial::{CountMatrix, GridSpec, Partition, Point};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithms 1 and 2 compute the same truncated series.
    #[test]
    fn alg1_and_alg2_agree(
        a in 0.0f64..20.0,
        b in 0.0f64..40.0,
        m in 2usize..12,
        k in 3usize..25,
    ) {
        let e1 = expression_error_alg1(a, b, m, k);
        let e2 = expression_error_alg2(a, b, m, k);
        prop_assert!((e1 - e2).abs() < 1e-8 * (1.0 + e1.abs()),
            "alg1 {e1} vs alg2 {e2}");
    }

    /// The adaptive-window value is bounded by Lemma III.1 and
    /// non-negative.
    #[test]
    fn windowed_expression_error_respects_lemma(
        a in 0.0f64..100.0,
        b in 0.0f64..500.0,
        m in 2usize..20,
    ) {
        let e = expression_error_windowed(a, b, m);
        prop_assert!(e >= -1e-12);
        prop_assert!(e <= lemma_upper_bound(a, b, m) + 1e-9,
            "e {e} above lemma bound {}", lemma_upper_bound(a, b, m));
    }

    /// Poisson pmf over a mass window always integrates to ≈ 1.
    #[test]
    fn pmf_mass_window_is_complete(lambda in 0.0f64..20_000.0) {
        let (lo, hi) = mass_window(lambda, 0);
        let mut pmf = Vec::new();
        poisson_pmf_into(lambda, lo, hi, &mut pmf);
        let total: f64 = pmf.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "λ={lambda}: {total}");
    }

    /// Closed-form MAD matches the series sum for any mean.
    #[test]
    fn poisson_mad_matches_series(lambda in 0.01f64..2_000.0) {
        let (lo, hi) = mass_window(lambda, 5);
        let mut pmf = Vec::new();
        poisson_pmf_into(lambda, lo, hi, &mut pmf);
        let series: f64 = pmf
            .iter()
            .enumerate()
            .map(|(i, p)| ((lo + i as u64) as f64 - lambda).abs() * p)
            .sum();
        let closed = poisson_mad(lambda);
        prop_assert!((series - closed).abs() < 1e-6 * closed.max(1.0),
            "λ={lambda}: series {series} closed {closed}");
    }

    /// Coarsen/spread conserve mass and invert on any non-negative field.
    #[test]
    fn coarsen_spread_mass_conservation(
        side_factor in 1u32..5,
        factor in 1u32..5,
        seed in 0u64..1000,
    ) {
        let side = side_factor * factor;
        let mut m = CountMatrix::zeros(side);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for v in m.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state % 1000) as f64 / 10.0;
        }
        let down = m.coarsen(factor).unwrap();
        prop_assert!((down.total() - m.total()).abs() < 1e-6);
        let up = down.spread(factor).unwrap();
        prop_assert!((up.total() - m.total()).abs() < 1e-6);
        let down2 = up.coarsen(factor).unwrap();
        for (x, y) in down.as_slice().iter().zip(down2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Theorem II.1 on arbitrary prediction/actual pairs.
    #[test]
    fn real_error_bounded_by_decomposition(
        s in 1u32..5,
        q in 1u32..4,
        seed in 0u64..1000,
    ) {
        let p = Partition::new(s, q);
        let mut state = seed.wrapping_mul(0xA24B_AED4_963E_E407).wrapping_add(3);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 100) as f64 / 7.0
        };
        let pred: Vec<f64> = (0..p.n()).map(|_| next()).collect();
        let actual: Vec<f64> = (0..p.total_hgrids()).map(|_| next()).collect();
        let sample = ErrorSample {
            predicted_mgrid: CountMatrix::from_vec(p.mgrid_spec().side(), pred).unwrap(),
            actual_hgrid: CountMatrix::from_vec(p.hgrid_spec().side(), actual).unwrap(),
        };
        let r = evaluate_errors(&[sample], &p).unwrap();
        prop_assert!(r.real <= r.upper_bound() + 1e-9, "{r:?}");
        prop_assert!(r.upper_bound() - r.real <= 2.0 * r.model.min(r.expression) + 1e-9);
    }

    /// Partition bookkeeping: every HGrid belongs to exactly one MGrid and
    /// local indices invert.
    #[test]
    fn partition_indexing_roundtrip(s in 1u32..8, q in 1u32..6) {
        let p = Partition::new(s, q);
        let h = p.hgrid_spec();
        let mut seen = vec![false; h.n_cells()];
        for mcell in p.mgrid_spec().cells() {
            for (j, hcell) in p.hgrids_of(mcell).into_iter().enumerate() {
                prop_assert!(!seen[hcell.index()]);
                seen[hcell.index()] = true;
                prop_assert_eq!(p.mgrid_of(hcell), mcell);
                prop_assert_eq!(p.local_index_of(hcell), j);
            }
        }
        prop_assert!(seen.into_iter().all(|x| x));
    }

    /// Grid cell lookup agrees with cell bounds on random points.
    #[test]
    fn cell_lookup_matches_bounds(side in 1u32..40, x in 0.0f64..1.0, y in 0.0f64..1.0) {
        let spec = GridSpec::new(side);
        let pt = Point::new(x.min(0.999_999), y.min(0.999_999));
        let cell = spec.cell_of(&pt).unwrap();
        prop_assert!(spec.cell_bounds(cell).contains(&pt));
    }
}
