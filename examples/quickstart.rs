//! Quickstart: tune the grid size for a synthetic city, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates an NYC-like city at the paper's full volume, estimates the
//! per-HGrid mean field `α` from four weeks of 8:00–8:30 history, plugs a
//! historical-average predictor into the upper-bound oracle (Algorithm 3),
//! and compares the three search algorithms from the paper (Brute-force,
//! Ternary Search, the Iterative Method). Takes a few minutes in release
//! mode — most of it is the brute-force baseline's 45 model trainings.

use gridtuner::datagen::{City, DataSplit};
use gridtuner::engine::{EngineConfig, SearchStrategy, TuningSession};
use gridtuner::predict::{CityModelError, HistoricalAverage, Predictor};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // An NYC-like synthetic city at the paper's full volume. (Model
    // training cost does not depend on volume — predictors see gridded
    // counts — and the dense-count regime is where the U-shape lives.)
    let city = City::nyc();
    println!(
        "city: {} (daily volume {:.0})",
        city.name(),
        city.daily_volume()
    );

    // Historical events for the α window: 8:00–8:30 on 28 days.
    let mut rng = StdRng::seed_from_u64(2022);
    let events = city.sample_history_events(16, 0..28, &mut rng);
    println!("history events in the α window: {}", events.len());

    // The model-error leg: a historical-average predictor retrained at
    // every probed grid size (swap in Mlp/DeepStLike/DmvstLike for the
    // paper's full setup).
    let split = DataSplit {
        train_days: (0, 21),
        val_days: (21, 24),
        test_day: 24,
    };
    let make = move || -> CityModelError<_> {
        CityModelError::new(City::nyc(), split, 7, || {
            Box::new(HistoricalAverage::new()) as Box<dyn Predictor>
        })
        .with_max_eval_slots(24)
    };

    let budget = 64; // √N — the HGrid budget side
    let range = (4, 48);
    for (label, strategy) in [
        ("brute-force", SearchStrategy::BruteForce),
        ("ternary search", SearchStrategy::Ternary),
        (
            "iterative method",
            SearchStrategy::Iterative { init: 16, bound: 4 },
        ),
    ] {
        // One validated config, one session: ingest the history once,
        // then tune. (Appending more events later re-tunes incrementally.)
        let config = EngineConfig::builder()
            .hgrid_budget_side(budget)
            .side_range(range.0, range.1)
            .strategy(strategy)
            .clock(*city.clock())
            .build()
            .expect("valid quickstart config");
        let mut session = TuningSession::new(config, make()).expect("session opens");
        session
            .ingest(&events)
            .expect("synthetic events are finite");
        let result = session.tune().expect("tuning succeeds");
        println!(
            "{label:>17}: optimal n = {s}x{s}  e(√n) = {e:.1}  ({k} model trainings)",
            s = result.outcome.side,
            e = result.outcome.error,
            k = result.outcome.evals,
        );
    }
}
