//! Model comparison: the predictor ladder at several grid sizes (the
//! miniature of the paper's Fig. 4).
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```
//!
//! Trains the historical average, the MLP, the DeepST-like and the
//! DMVST-like model at a few MGrid sides on a Chengdu-like city and prints
//! the total model error `Σ_i |λ̂_i − λ_i| ≈ n·MAE(f)` on validation slots.

use gridtuner::datagen::{City, DataSplit};
use gridtuner::predict::{
    CityModelError, DeepStLike, DmvstLike, HistoricalAverage, Mlp, Predictor, TrainConfig,
};

fn main() {
    let scale = 0.02; // ~4.8k orders/day
    let split = DataSplit {
        train_days: (0, 21),
        val_days: (21, 23),
        test_day: 23,
    };
    let train_cfg = TrainConfig {
        epochs: 4,
        max_samples: 400,
        ..TrainConfig::default()
    };
    let sides = [4u32, 8, 16, 24];

    println!("total model error on validation slots (Chengdu-like, scale {scale}):");
    print!("{:>18}", "model \\ side");
    for s in sides {
        print!("{:>10}", format!("{s}x{s}"));
    }
    println!();

    type Factory = Box<dyn Fn() -> Box<dyn Predictor>>;
    let factories: Vec<(&str, Factory)> = vec![
        (
            "historical-avg",
            Box::new(|| Box::new(HistoricalAverage::new()) as Box<dyn Predictor>),
        ),
        (
            "mlp",
            Box::new(move || Box::new(Mlp::new(train_cfg)) as Box<dyn Predictor>),
        ),
        (
            "deepst-like",
            Box::new(move || Box::new(DeepStLike::new(train_cfg)) as Box<dyn Predictor>),
        ),
        (
            "dmvst-like",
            Box::new(move || Box::new(DmvstLike::new(train_cfg)) as Box<dyn Predictor>),
        ),
    ];

    for (name, factory) in factories {
        print!("{name:>18}");
        let mut oracle =
            CityModelError::new(City::chengdu().scaled(scale), split, 11, move || factory())
                .with_max_eval_slots(16);
        for s in sides {
            let (err, _) = oracle.measure(s);
            print!("{err:>10.1}");
        }
        println!();
    }
    println!("\n(model error grows with n for every model — the paper's Fig. 4 trend)");
}
