//! Search playground: watch the three OGSS search algorithms probe the
//! same upper-bound curve.
//!
//! ```text
//! cargo run --release --example search_playground
//! ```
//!
//! Builds the morning-peak upper-bound curve for a Chengdu-like city
//! (analytic expression error + a historical-average model-error leg) and
//! prints each algorithm's probe trail, so you can see *why* ternary
//! search sometimes misses a jagged minimum while the iterative method
//! walks into it.

use gridtuner::core::expression::total_expression_error;
use gridtuner::core::search::{brute_force, iterative_method, ternary_search, SearchOutcome};
use gridtuner::datagen::City;
use gridtuner::predict::{HistoricalAverage, Predictor};
use gridtuner::spatial::{GridSpec, Partition};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let city = City::chengdu();
    let clock = *city.clock();
    let (lo, hi) = (4u32, 40u32);
    let budget = 128u32;

    // Precompute the curve so each algorithm sees identical values.
    println!("building e(√n) for sides {lo}..{hi} (this trains one HA model per side)...");
    let mut curve = Vec::new();
    for side in lo..=hi {
        let partition = Partition::for_budget(side, budget);
        // Model-error leg: HA trained on 4 weeks, evaluated on 2 days.
        let mut rng = StdRng::seed_from_u64(7 ^ ((side as u64) << 16));
        let series = city.sample_count_series(GridSpec::new(side), 48 * 30, &mut rng);
        let mut ha = HistoricalAverage::new();
        ha.fit(&series, &clock, clock.slot_at(28, 0));
        let mut model_err = 0.0;
        for day in 28..30 {
            let slot = clock.slot_at(day, 16);
            let pred = ha.predict(&series, &clock, slot);
            model_err += pred.l1_distance(&series.slot_matrix(slot)).unwrap() / 2.0;
        }
        // Expression-error leg from the true mean field.
        let alpha = city.mean_field(partition.hgrid_spec(), clock.slot_at(28, 16));
        curve.push(model_err + total_expression_error(&alpha, &partition));
    }
    let oracle = |s: u32| curve[(s - lo) as usize];

    let show = |name: &str, out: &SearchOutcome| {
        let trail: Vec<String> = out
            .probes
            .iter()
            .map(|&(s, e)| format!("{s}:{e:.0}"))
            .collect();
        println!(
            "\n{name}: chose side {} (e = {:.0}) with {} evaluations",
            out.side, out.error, out.evals
        );
        println!("  probes: {}", trail.join("  "));
    };

    let bf = brute_force(oracle, lo, hi);
    show("brute-force", &bf);
    let ts = ternary_search(oracle, lo, hi);
    show("ternary search", &ts);
    let it = iterative_method(oracle, lo, hi, 16, 4);
    show("iterative method", &it);

    println!(
        "\noptimal ratios: ternary {:.2}%, iterative {:.2}%",
        100.0 * bf.error / ts.error,
        100.0 * bf.error / it.error
    );
}
