//! Expression-error explorer: the three algorithms of Sec. III-B side by
//! side (accuracy and cost), plus the D_α(N) curve that selects N.
//!
//! ```text
//! cargo run --release --example expression_explorer
//! ```

use gridtuner::core::dalpha::{d_alpha, select_hgrid_side};
use gridtuner::core::expression::{
    expression_error_alg1, expression_error_alg2, expression_error_naive, expression_error_windowed,
};
use gridtuner::datagen::City;
use gridtuner::spatial::GridSpec;
use std::time::Instant;

fn main() {
    // One HGrid with mean 2.0 inside an MGrid of m = 16 HGrids whose other
    // cells hold 10 events in total.
    let (a, b, m) = (2.0, 10.0, 16);
    println!("E_e(i,j) for α_ij = {a}, Σ_g≠j α_ig = {b}, m = {m}");
    println!("{:>6} {:>12} {:>12} {:>12}", "K", "naive", "alg1", "alg2");
    for k in [5usize, 10, 20, 40] {
        let naive = expression_error_naive(a, b, m, k);
        let alg1 = expression_error_alg1(a, b, m, k);
        let alg2 = expression_error_alg2(a, b, m, k);
        println!("{k:>6} {naive:>12.8} {alg1:>12.8} {alg2:>12.8}");
    }
    println!(
        "windowed (K→∞): {:.8}\n",
        expression_error_windowed(a, b, m)
    );

    // Cost comparison at the paper's operating point.
    println!("time per call at K = 120:");
    for (name, f) in [
        (
            "naive",
            expression_error_naive as fn(f64, f64, usize, usize) -> f64,
        ),
        ("alg1", expression_error_alg1),
        ("alg2", expression_error_alg2),
    ] {
        let t = Instant::now();
        let reps = if name == "naive" { 3 } else { 100 };
        for _ in 0..reps {
            std::hint::black_box(f(a, b, m, 120));
        }
        println!("  {name:>6}: {:>10.3?}", t.elapsed() / reps);
    }

    // D_α(N) across HGrid resolutions for the three city presets.
    println!("\nD_α(N) of the analytic mean field (slot 16, weekday):");
    print!("{:>10}", "side");
    let sides = [8u32, 16, 32, 64, 96, 128];
    for s in sides {
        print!("{s:>10}");
    }
    println!();
    for city in City::all_presets() {
        print!("{:>10}", city.name());
        let slot = city.clock().slot_at(7, 16);
        let mut curve = Vec::new();
        for s in sides {
            let field = city.mean_field(GridSpec::new(s), slot);
            let d = d_alpha(&field);
            curve.push((s, d));
            print!("{d:>10.1}");
        }
        let knee = select_hgrid_side(&curve, 0.05);
        println!("   knee ≈ {knee}");
    }
}
