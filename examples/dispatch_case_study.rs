//! Dispatch case study: what grid size selection buys a real consumer of
//! the predictions (the miniature of the paper's Sec. V-D / Table III).
//!
//! ```text
//! cargo run --release --example dispatch_case_study
//! ```
//!
//! Trains a historical-average predictor at three grid sizes on an
//! NYC-like city, runs POLAR task assignment on the test day with each
//! prediction resolution, and reports served orders and revenue.

use gridtuner::datagen::{City, DataSplit, TripGenerator};
use gridtuner::dispatch::{
    DemandView, Dispatcher, FleetConfig, Order, Polar, SimConfig, Simulator,
};
use gridtuner::predict::{HistoricalAverage, Predictor};
use gridtuner::spatial::{GridSpec, Partition, SlotId};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let scale = 0.01; // ~2.8k orders on the test day
    let city = City::nyc().scaled(scale);
    let clock = *city.clock();
    let split = DataSplit {
        train_days: (0, 21),
        val_days: (21, 24),
        test_day: 24,
    };

    // The test day's trips (shared across all grid sizes).
    let mut rng = StdRng::seed_from_u64(99);
    let trips = TripGenerator::default().trips_for_day(&city, split.test_day, &mut rng);
    let orders = Order::from_trips(&trips);
    println!(
        "test day: {} orders, fleet of {} drivers\n",
        orders.len(),
        FleetConfig::default().n_drivers / 5
    );

    let sim = Simulator::new(SimConfig {
        fleet: FleetConfig {
            n_drivers: 100,
            ..FleetConfig::default()
        },
        geo: *city.geo(),
        unserved_penalty_km: 10.0,
    });

    println!(
        "{:>8} {:>14} {:>12} {:>12}",
        "n", "served orders", "revenue", "service rate"
    );
    let budget = 64;
    for side in [2u32, 8, 16, 32] {
        let partition = Partition::for_budget(side, budget);
        // Train a predictor at this MGrid resolution.
        let horizon = (split.val_days.1 * clock.slots_per_day()) as usize;
        let mut rng = StdRng::seed_from_u64(7);
        let series = city.sample_count_series(GridSpec::new(side), horizon, &mut rng);
        let mut model = HistoricalAverage::new();
        model.fit(&series, &clock, clock.slot_at(split.train_days.1, 0));

        // Per-slot demand views come from the model's MGrid prediction for
        // the test day's slot-of-day (HA generalizes across days).
        let mut demand_for = |slot: SlotId| {
            let sod = clock.slot_of_day(slot);
            let lookup = clock.slot_at(split.val_days.0, sod);
            let pred = model.predict(&series, &clock, lookup);
            DemandView::from_mgrid(&pred, &partition)
        };
        let mut polar = Polar::new();
        let out = sim.run(&orders, &mut polar, &mut demand_for);
        println!(
            "{:>8} {:>14} {:>12.0} {:>11.1}%",
            format!("{side}x{side}"),
            out.served,
            out.revenue,
            100.0 * out.service_rate()
        );
        let _ = polar.name();
    }
    println!("\n(too-coarse and too-fine grids both hurt the dispatcher — Fig. 6's shape)");
}
